module Task = Sc_compute.Task
module Optimal = Sc_audit.Optimal
module Protocol = Sc_audit.Protocol
module Telemetry = Sc_telemetry.Telemetry
module Transport = Seccloud.Transport
module Endpoint = Seccloud.Endpoint

let c_epochs = Telemetry.counter "sim.epochs"
let c_audits = Telemetry.counter "sim.audits"

type config = {
  seed : string;
  params : Sc_pairing.Params.t lazy_t;
  n_servers : int;
  byzantine_bound : int;
  n_users : int;
  blocks_per_file : int;
  ints_per_block : int;
  tasks_per_service : int;
  samples_per_audit : int;
  epochs : int;
  network : Network.config;
  cheat_damage : float;
  faults : Transport.faults;
  retry : Transport.Retry.policy;
}

let default_config =
  {
    seed = "sim-default";
    params = Sc_pairing.Params.toy;
    n_servers = 4;
    byzantine_bound = 1;
    n_users = 2;
    blocks_per_file = 32;
    ints_per_block = 8;
    tasks_per_service = 16;
    samples_per_audit = 8;
    epochs = 5;
    network = Network.default_config;
    cheat_damage = 100.0;
    faults = Transport.perfect;
    retry = Transport.Retry.default;
  }

type audit_outcome = {
  epoch : int;
  server : string;
  user : string;
  server_cheats : bool;
  storage_ok : bool;
  computation_ok : bool;
  channel_timeout : bool;
  channel_tampered : bool;
  samples : int;
  bytes : int;
  recompute_seconds : float;
}

type stats = {
  outcomes : audit_outcome list;
  sim_time : float;
  total_bytes : int;
  detected : int;
  undetected : int;
  false_alarms : int;
  honest_passed : int;
  channel_timeouts : int;
  channel_tampering : int;
  records : Optimal.audit_record list;
}

(* Every exchange travels as encoded {!Seccloud.Wire} bytes through a
   per-pair {!Seccloud.Transport}, whose charge callback feeds
   {!Network.record_transfer}: the C_trans fed to Theorem 3's history
   learning is the exact number of bytes the channel delivered,
   retries and duplicates included. *)

let sample_indices ~drbg ~universe ~count =
  let n = min count universe in
  let arr = Array.init universe Fun.id in
  for i = 0 to n - 1 do
    let j = i + Sc_hash.Drbg.uniform_int drbg (universe - i) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list (Array.sub arr 0 n)

(* The whole campaign runs under one [sim.campaign] root span: every
   epoch, audit and transport RPC (including server-side handler
   spans, via the envelope context) shares its trace id, and the
   campaign verdict is stamped on it as attributes so an SLO file can
   assert e.g. [attr(sim.campaign.false_alarms) = 0] straight from
   the trace. *)
let run config =
  Telemetry.with_span ~name:"sim.campaign"
    ~attrs:
      [ "seed", config.seed; "epochs", string_of_int config.epochs;
        "servers", string_of_int config.n_servers;
        "users", string_of_int config.n_users ]
  @@ fun () ->
  let system =
    Seccloud.System.create ~params:config.params ~seed:config.seed
      ~cs_ids:(List.init config.n_servers (Printf.sprintf "cs-%d"))
      ~da_id:"da" ()
  in
  let da = Endpoint.Da.create system in
  let drbg = Sc_hash.Drbg.create ~seed:("sim:" ^ config.seed) in
  let adversary =
    Adversary.create ~drbg ~bound:config.byzantine_bound
      ~server_ids:(Seccloud.System.cs_ids system)
      ()
  in
  let net = Network.create config.network in
  let queue = Event_queue.create () in
  let users =
    List.init config.n_users (fun i ->
        Seccloud.User.create system ~id:(Printf.sprintf "user-%d" i))
  in
  let payloads_for user_id =
    List.init config.blocks_per_file (fun i ->
        Sc_storage.Block.encode_ints
          (List.init config.ints_per_block (fun j ->
               Sc_hash.Drbg.uniform_int drbg 100 + i + j))
        |> fun s -> ignore user_id; s)
  in
  let outcomes = ref [] in
  let records = ref [] in
  let finish_audit ~epoch_idx ~cloud_id ~user_id ~server_cheats ~storage_ok
      ~computation_ok ~channel_timeout ~channel_tampered ~bytes
      ~recompute_seconds =
    let outcome =
      {
        epoch = epoch_idx;
        server = cloud_id;
        user = user_id;
        server_cheats;
        storage_ok;
        computation_ok;
        channel_timeout;
        channel_tampered;
        samples = config.samples_per_audit;
        bytes;
        recompute_seconds;
      }
    in
    outcomes := outcome :: !outcomes;
    let caught = not (storage_ok && computation_ok) in
    records :=
      {
        Optimal.samples = config.samples_per_audit;
        bytes_transferred = float_of_int bytes;
        recompute_seconds;
        undetected_cheat_damage =
          (if server_cheats && not caught then Some config.cheat_damage
           else None);
      }
      :: !records
  in
  let run_epoch epoch_idx =
    Telemetry.incr c_epochs;
    Telemetry.with_span ~name:"sim.epoch"
      ~attrs:[ "epoch", string_of_int epoch_idx ]
    @@ fun () ->
    Adversary.new_epoch adversary;
    (* Rebuild the fleet with this epoch's corruption assignment; each
       cloud sits behind a byte-in/byte-out server endpoint. *)
    let clouds =
      List.map
        (fun id ->
          match Adversary.corruption_of adversary id with
          | None -> Seccloud.Cloud.create system ~id ()
          | Some c ->
            Seccloud.Cloud.create system ~id ~storage:c.Adversary.storage
              ~compute:c.Adversary.compute ())
        (Seccloud.System.cs_ids system)
    in
    let endpoints =
      List.map (fun c -> c, Endpoint.Server.create system c) clouds
      |> Array.of_list
    in
    List.iteri
      (fun ui user ->
        let cloud, server = endpoints.(ui mod Array.length endpoints) in
        let cloud_id = Seccloud.Cloud.id cloud in
        let user_id = Seccloud.User.id user in
        let file = Printf.sprintf "file-%s-e%d" user_id epoch_idx in
        let payloads = payloads_for user_id in
        let server_cheats =
          Adversary.corruption_of adversary cloud_id <> None
        in
        (* One fault-injected channel per (user, server) pair per
           epoch, seeded so a lossy campaign replays exactly. *)
        let transport =
          Transport.create ~faults:config.faults ~policy:config.retry
            ~drbg:
              (Sc_hash.Drbg.create
                 ~seed:
                   (Sc_hash.Encode.canonical
                      [
                        "sim-transport";
                        config.seed;
                        string_of_int epoch_idx;
                        user_id;
                        cloud_id;
                      ]))
            ~charge:(fun ~bytes -> Network.record_transfer net ~bytes)
            ~now:(Event_queue.now queue) ~peer:cloud_id
            ~public:(Seccloud.System.public system)
            ~handler:(Endpoint.Server.handle server) ()
        in
        let bytes0 = Network.total_bytes net in
        (* Injector ground truth for blame accounting: tampering that
           survives decoding is caught by the signatures but cannot be
           attributed to the channel by the protocol itself, so the
           statistics classify such rounds with the same ground-truth
           access used for [server_cheats]. *)
        let tamper0 = Telemetry.counter_value "transport.fault.tamper" in
        (* Upload (Protocol II) over the wire. *)
        let uploaded =
          Seccloud.User.store_over user ~transport ~cs_id:cloud_id ~file
            payloads
        in
        (* Computation request (Protocol III): the commitment comes
           back over the same channel. *)
        let service =
          Task.random_service ~drbg ~n_positions:config.blocks_per_file
            ~n_tasks:config.tasks_per_service
        in
        let commitment =
          match uploaded with
          | Error e -> Error (`Channel e)
          | Ok false ->
            (* Servers never reject a correctly signed upload, so a
               rejection means the channel flipped a bit that survived
               decoding: blame the channel, not the server. *)
            Error (`Channel Transport.Tampered)
          | Ok true -> (
            match
              Transport.call transport ~expect:"compute_commitment"
                (Seccloud.Wire.Compute_request
                   { owner = user_id; file; service })
            with
            | Ok (Seccloud.Wire.Compute_commitment { commitment; _ }) ->
              Ok commitment
            | Ok _ -> Error `Refused
            | Error e -> Error (`Channel e))
        in
        let setup_tampered =
          Telemetry.counter_value "transport.fault.tamper" > tamper0
        in
        let setup_delay = Transport.now transport -. Event_queue.now queue in
        Event_queue.schedule queue ~delay:setup_delay (fun () ->
            Telemetry.incr c_audits;
            Telemetry.with_span ~name:"sim.audit"
              ~attrs:
                [ "epoch", string_of_int epoch_idx; "server", cloud_id ]
            @@ fun () ->
            if Event_queue.now queue > Transport.now transport then
              Transport.set_now transport (Event_queue.now queue);
            let indices =
              sample_indices ~drbg ~universe:config.blocks_per_file
                ~count:config.samples_per_audit
            in
            let t0 = Sys.time () in
            match commitment with
            | Error (`Channel e) ->
              (* The channel swallowed the setup phase: there is
                 nothing to audit, the server is blamed as
                 unresponsive (or tampering) without a crypto
                 verdict. *)
              let recompute_seconds = Sys.time () -. t0 in
              finish_audit ~epoch_idx ~cloud_id ~user_id ~server_cheats
                ~storage_ok:false ~computation_ok:false
                ~channel_timeout:(e = Transport.Timeout)
                ~channel_tampered:(e = Transport.Tampered)
                ~bytes:(Network.total_bytes net - bytes0)
                ~recompute_seconds
            | (Error `Refused | Ok _) as commitment ->
              let tamper1 =
                Telemetry.counter_value "transport.fault.tamper"
              in
              let storage_report =
                Endpoint.Da.audit_storage_over_wire da ~transport
                  ~owner:user_id ~file ~indices
              in
              let now = Event_queue.now queue in
              let verdict =
                match commitment with
                | Ok commitment ->
                  let warrant =
                    Seccloud.User.delegate_audit user ~now ~lifetime:3600.0
                      ~scope:("audit " ^ file)
                  in
                  Endpoint.Da.audit_computation_over_wire da ~transport
                    ~owner:user_id ~file ~commitment ~warrant ~now
                    ~samples:config.samples_per_audit
                | Error _ ->
                  (* The server answered the compute request with an
                     error Ack: a protocol refusal, not a channel
                     fault. *)
                  {
                    Protocol.valid = false;
                    failures = [ Protocol.Warrant_invalid ];
                  }
              in
              let recompute_seconds = Sys.time () -. t0 in
              let channel_errors =
                (match storage_report.Seccloud.Agency.channel with
                | Some e -> [ e ]
                | None -> [])
                @ List.filter_map
                    (function
                      | Protocol.Transport_timeout _ -> Some Transport.Timeout
                      | Protocol.Transport_tampered _ ->
                        Some Transport.Tampered
                      | _ -> None)
                    verdict.Protocol.failures
              in
              let storage_ok = storage_report.Seccloud.Agency.intact in
              let computation_ok = verdict.Protocol.valid in
              let tampering_injected =
                setup_tampered
                || Telemetry.counter_value "transport.fault.tamper" > tamper1
              in
              finish_audit ~epoch_idx ~cloud_id ~user_id ~server_cheats
                ~storage_ok ~computation_ok
                ~channel_timeout:(List.mem Transport.Timeout channel_errors)
                ~channel_tampered:
                  (List.mem Transport.Tampered channel_errors
                  || ((not (storage_ok && computation_ok))
                     && tampering_injected))
                ~bytes:(Network.total_bytes net - bytes0)
                ~recompute_seconds))
      users
  in
  for e = 1 to config.epochs do
    Event_queue.schedule_at queue ~time:(float_of_int e *. 10_000.0) (fun () ->
        run_epoch e)
  done;
  Event_queue.run queue;
  let outcomes = List.rev !outcomes in
  let tally f = List.length (List.filter f outcomes) in
  let caught o = not (o.storage_ok && o.computation_ok) in
  let channel o = o.channel_timeout || o.channel_tampered in
  let stats =
    {
      outcomes;
      sim_time = Event_queue.now queue;
      total_bytes = Network.total_bytes net;
      detected = tally (fun o -> o.server_cheats && caught o);
      undetected = tally (fun o -> o.server_cheats && not (caught o));
      false_alarms =
        tally (fun o -> (not o.server_cheats) && caught o && not (channel o));
      honest_passed = tally (fun o -> (not o.server_cheats) && not (caught o));
      channel_timeouts = tally (fun o -> o.channel_timeout);
      channel_tampering = tally (fun o -> o.channel_tampered);
      records = List.rev !records;
    }
  in
  Telemetry.add_attr "audits" (string_of_int (List.length outcomes));
  Telemetry.add_attr "detected" (string_of_int stats.detected);
  Telemetry.add_attr "undetected" (string_of_int stats.undetected);
  Telemetry.add_attr "false_alarms" (string_of_int stats.false_alarms);
  Telemetry.add_attr "channel_timeouts" (string_of_int stats.channel_timeouts);
  stats

let detection_rate stats =
  let total = stats.detected + stats.undetected in
  if total = 0 then 1.0 else float_of_int stats.detected /. float_of_int total

let learned_costs ?(a3 = 1.0) stats = Optimal.learn_costs ~a3 stats.records

(* ------------------------------------------------------------------ *)
(* Service-layer soak campaign                                        *)
(* ------------------------------------------------------------------ *)

module Service = Sc_service.Service

type service_config = {
  sv_seed : string;
  sv_params : Sc_pairing.Params.t lazy_t;
  sv_service : Service.config;
  sv_identities : int;
  sv_lookup_stride : int;
  sv_heavy : int;
  sv_corrupt : int;
  sv_blocks_per_file : int;
  sv_ints_per_block : int;
  sv_tasks : int;
  sv_samples : int;
  sv_audit_rounds : int;
  sv_dynamic_ops : int;
}

let default_service_config =
  {
    sv_seed = "service-campaign";
    sv_params = Sc_pairing.Params.toy;
    sv_service = Service.default_config;
    sv_identities = 20_000;
    sv_lookup_stride = 16;
    sv_heavy = 64;
    sv_corrupt = 8;
    sv_blocks_per_file = 4;
    sv_ints_per_block = 8;
    sv_tasks = 4;
    sv_samples = 4;
    sv_audit_rounds = 2;
    sv_dynamic_ops = 6;
  }

type service_protocol = {
  sp_name : string;
  sp_count : int;
  sp_p50_us : float;
  sp_p99_us : float;
}

type service_stats = {
  sv_ledger : Service.ledger;
  sv_digest : string;
  sv_shard_tenants : int array;
  sv_false_alarms : int;
  sv_detected : int;
  sv_missed : int;
  sv_channel_suspected : int;
  sv_elapsed_s : float;
  sv_audit_elapsed_s : float;
  sv_audits_per_sec : float;
  sv_requests_per_sec : float;
  sv_protocols : service_protocol list;
}

let service_tenant_name i = Printf.sprintf "tenant-%08d" i
let service_ops =
  [ "admit"; "lookup"; "store"; "corrupt"; "mutate"; "audit"; "compute" ]

let ns_to_s ns = Int64.to_float ns /. 1e9

let run_service cfg =
  if cfg.sv_identities < 1 then invalid_arg "run_service: identities < 1";
  if cfg.sv_heavy > cfg.sv_identities then
    invalid_arg "run_service: heavy > identities";
  if cfg.sv_corrupt > cfg.sv_heavy then
    invalid_arg "run_service: corrupt > heavy";
  Telemetry.with_span ~name:"service.campaign" @@ fun () ->
  let svc =
    Service.create ~config:cfg.sv_service ~params:cfg.sv_params
      ~seed:cfg.sv_seed ()
  in
  let drbg =
    Sc_hash.Drbg.create
      ~seed:(Sc_hash.Encode.canonical [ "service-campaign"; cfg.sv_seed ])
  in
  (* Heavy tenants are strided across the identity space so every
     shard sees its share of full-crypto traffic. *)
  let stride = max 1 (cfg.sv_identities / max 1 cfg.sv_heavy) in
  let heavy =
    List.init cfg.sv_heavy (fun j ->
        service_tenant_name (j * stride mod cfg.sv_identities))
  in
  let corrupted = Hashtbl.create 16 in
  List.iteri
    (fun j id -> if j < cfg.sv_corrupt then Hashtbl.replace corrupted id ())
    heavy;
  let file = "soak" in
  let false_alarms = ref 0
  and detected = ref 0
  and missed = ref 0
  and suspected = ref 0 in
  (* Ground truth: the only tenants whose audits may legitimately fail
     crypto verification are the ones we corrupted — and only after
     the corruption wave ran (audits are all submitted later). *)
  let classify results =
    List.iter
      (fun (tenant, _request, response) ->
        let corrupt = Hashtbl.mem corrupted tenant in
        match response with
        | Service.Audited { report; tampered_in_flight } -> (
          match report.Seccloud.Agency.channel with
          | Some _ -> ()
          | None ->
            if report.Seccloud.Agency.intact then begin
              if corrupt then incr missed
            end
            else if corrupt then incr detected
            else if tampered_in_flight then incr suspected
            else incr false_alarms)
        | Service.Computed { verdict; tampered_in_flight } ->
          if
            List.exists Protocol.is_transport_failure verdict.Protocol.failures
          then ()
          else if not verdict.Protocol.valid then begin
            (* A computation over rotten data may or may not touch the
               bad block, so validity is not a miss for corrupt
               tenants — but an honest tenant's computation must never
               fail crypto-clean. *)
            if corrupt then incr detected
            else if tampered_in_flight then incr suspected
            else incr false_alarms
          end
        | Service.Mutated { intact; diverged; _ } ->
          (* The dynamic view is built from the retained (honest)
             upload and only mutated through proof-checked ops, so any
             failed audit or caught divergence is a false alarm by
             ground truth. *)
          if (not intact) || diverged then incr false_alarms
        | _ -> ())
      results
  in
  let submit tenant request =
    let rec go () =
      match Service.submit svc ~tenant request with
      | Ok () -> ()
      | Error (Service.Overloaded _) ->
        (* The stream outran the queues: drain to completion, then
           retry — typed backpressure, never a blocked or dropped
           submission. *)
        classify (Service.drain svc);
        go ()
    in
    go ()
  in
  let t_all = Telemetry.now_ns () in
  (* Wave 1: admission for every identity, light lookups riding
     along. *)
  for i = 0 to cfg.sv_identities - 1 do
    let id = service_tenant_name i in
    submit id Service.Admit;
    if cfg.sv_lookup_stride > 0 && i mod cfg.sv_lookup_stride = 0 then
      submit id Service.Lookup
  done;
  classify (Service.drain svc);
  (* Wave 2: heavy tenants store a signed file over the wire. *)
  List.iter
    (fun id ->
      let payloads =
        List.init cfg.sv_blocks_per_file (fun _ ->
            Sc_storage.Block.encode_ints
              (List.init cfg.sv_ints_per_block (fun _ ->
                   Sc_hash.Drbg.uniform_int drbg 1000)))
      in
      submit id (Service.Store { file; payloads }))
    heavy;
  classify (Service.drain svc);
  (* Wave 3: silent corruption of the chosen tenants' data. *)
  List.iteri
    (fun j id ->
      if j < cfg.sv_corrupt then submit id (Service.Corrupt { file }))
    heavy;
  classify (Service.drain svc);
  (* Wave 3b: authenticated dynamics — every heavy tenant runs a
     mutation burst (update/append/tombstone) against a dynamic view
     of its file, ending in one signed root transition and a
     rank-proof audit. *)
  if cfg.sv_dynamic_ops > 0 then begin
    List.iter
      (fun id -> submit id (Service.Mutate { file; ops = cfg.sv_dynamic_ops }))
      heavy;
    classify (Service.drain svc)
  end;
  (* Wave 4: audit rounds — storage and computation audits for every
     heavy tenant. *)
  let t_audit = Telemetry.now_ns () in
  for _round = 1 to cfg.sv_audit_rounds do
    List.iter
      (fun id ->
        submit id (Service.Audit_storage { file; samples = cfg.sv_samples });
        submit id
          (Service.Compute
             { file; n_tasks = cfg.sv_tasks; samples = cfg.sv_samples }))
      heavy;
    classify (Service.drain svc)
  done;
  let audit_elapsed = ns_to_s (Telemetry.elapsed_ns t_audit) in
  let elapsed = ns_to_s (Telemetry.elapsed_ns t_all) in
  let ledger = Service.ledger svc in
  let protocols =
    List.filter_map
      (fun op ->
        let name = "service." ^ op in
        match Telemetry.find ("span." ^ name) with
        | Some (Telemetry.Histogram h) when h.Telemetry.count > 0 ->
          Some
            {
              sp_name = name;
              sp_count = h.Telemetry.count;
              sp_p50_us = Telemetry.quantile h 0.5;
              sp_p99_us = Telemetry.quantile h 0.99;
            }
        | _ -> None)
      service_ops
  in
  let stats =
    {
      sv_ledger = ledger;
      sv_digest = Service.digest svc;
      sv_shard_tenants = Service.tenant_counts svc;
      sv_false_alarms = !false_alarms;
      sv_detected = !detected;
      sv_missed = !missed;
      sv_channel_suspected = !suspected;
      sv_elapsed_s = elapsed;
      sv_audit_elapsed_s = audit_elapsed;
      sv_audits_per_sec =
        (if audit_elapsed > 0.0 then
           float_of_int (ledger.Service.audits + ledger.Service.computes)
           /. audit_elapsed
         else 0.0);
      sv_requests_per_sec =
        (if elapsed > 0.0 then
           float_of_int ledger.Service.processed /. elapsed
         else 0.0);
      sv_protocols = protocols;
    }
  in
  Telemetry.add_attr "identities" (string_of_int cfg.sv_identities);
  Telemetry.add_attr "processed" (string_of_int ledger.Service.processed);
  Telemetry.add_attr "rejected" (string_of_int ledger.Service.rejected);
  Telemetry.add_attr "false_alarms" (string_of_int stats.sv_false_alarms);
  Telemetry.add_attr "digest" stats.sv_digest;
  stats

let service_metrics cfg stats =
  let l = stats.sv_ledger in
  let base =
    [
      "identities", float_of_int cfg.sv_identities;
      "heavy_tenants", float_of_int cfg.sv_heavy;
      "corrupt_tenants", float_of_int cfg.sv_corrupt;
      "shards", float_of_int cfg.sv_service.Service.shards;
      "queue_capacity", float_of_int cfg.sv_service.Service.queue_capacity;
      "submitted", float_of_int l.Service.submitted;
      "accepted", float_of_int l.Service.accepted;
      "rejected", float_of_int l.Service.rejected;
      "processed", float_of_int l.Service.processed;
      "admitted", float_of_int l.Service.admitted;
      "lookups", float_of_int l.Service.lookups;
      "stores", float_of_int l.Service.stores;
      "store_failures", float_of_int l.Service.store_failures;
      "corruptions", float_of_int l.Service.corruptions;
      "audits", float_of_int l.Service.audits;
      "audit_alarms", float_of_int l.Service.audit_alarms;
      "computes", float_of_int l.Service.computes;
      "compute_alarms", float_of_int l.Service.compute_alarms;
      "mutations", float_of_int l.Service.mutations;
      "mutation_ops", float_of_int l.Service.mutation_ops;
      "mutation_alarms", float_of_int l.Service.mutation_alarms;
      "channel_blames", float_of_int l.Service.channel_blames;
      "denials", float_of_int l.Service.denials;
      "queue_peak", float_of_int l.Service.queue_peak;
      "false_alarms", float_of_int stats.sv_false_alarms;
      "detected", float_of_int stats.sv_detected;
      "missed", float_of_int stats.sv_missed;
      "channel_suspected", float_of_int stats.sv_channel_suspected;
      "elapsed_s", stats.sv_elapsed_s;
      "audit_elapsed_s", stats.sv_audit_elapsed_s;
      "audits_per_sec", stats.sv_audits_per_sec;
      "requests_per_sec", stats.sv_requests_per_sec;
    ]
  in
  base
  @ List.concat_map
      (fun p ->
        [
          Printf.sprintf "count(%s)" p.sp_name, float_of_int p.sp_count;
          Printf.sprintf "p50_us(%s)" p.sp_name, p.sp_p50_us;
          Printf.sprintf "p99_us(%s)" p.sp_name, p.sp_p99_us;
        ])
      stats.sv_protocols

let service_stats_json ?slos cfg stats =
  let module Json = Sc_telemetry.Json in
  let num v =
    if Float.is_integer v && Float.abs v < 1e15 then
      string_of_int (int_of_float v)
    else Json.float v
  in
  let fields =
    List.map (fun (k, v) -> k, num v) (service_metrics cfg stats)
    @ [
        "digest", Json.str stats.sv_digest;
        ( "shard_tenants",
          Json.arr
            (Array.to_list
               (Array.map string_of_int stats.sv_shard_tenants)) );
      ]
    @
    match slos with
    | None -> []
    | Some slos -> [ "slo", Sc_telemetry.Slo.json slos ]
  in
  Json.obj fields

let check_service_slos cfg stats content =
  let metrics = service_metrics cfg stats in
  Sc_telemetry.Slo.check
    ~lookup:(fun name ->
      match List.assoc_opt name metrics with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "unknown metric %S" name))
    content
