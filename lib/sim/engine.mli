(** The end-to-end cloud simulation: n servers under a mobile
    Byzantine adversary, users storing data and outsourcing
    computation, the DA auditing every execution — all driven through
    a discrete-event clock, a network cost model and a
    fault-injectable {!Seccloud.Transport} channel per (user, server)
    pair.

    Each epoch the adversary corrupts a fresh subset of at most b
    servers (§III-B); every audit outcome is compared against ground
    truth, giving detection statistics and the audit-cost history that
    feeds Theorem 3's "history learning".  With lossy [faults] the
    campaign still terminates: rounds that exhaust their retries are
    blamed as typed channel failures rather than raising. *)

type config = {
  seed : string;
  params : Sc_pairing.Params.t lazy_t;
  n_servers : int;
  byzantine_bound : int;
  n_users : int;
  blocks_per_file : int;
  ints_per_block : int;
  tasks_per_service : int;
  samples_per_audit : int;
  epochs : int;
  network : Network.config;
  cheat_damage : float; (* damage of an undetected cheating epoch *)
  faults : Seccloud.Transport.faults; (* injected channel faults *)
  retry : Seccloud.Transport.Retry.policy;
}

val default_config : config
(** Toy parameters, 4 servers / b = 1, 2 users, 5 epochs, a perfect
    channel with the default retry policy. *)

type audit_outcome = {
  epoch : int;
  server : string;
  user : string;
  server_cheats : bool; (* ground truth *)
  storage_ok : bool;
  computation_ok : bool;
  channel_timeout : bool; (* some round exhausted retries silently *)
  channel_tampered : bool; (* some round kept arriving mangled *)
  samples : int;
  bytes : int; (* wire bytes for the whole campaign, retries included *)
  recompute_seconds : float;
}

type stats = {
  outcomes : audit_outcome list;
  sim_time : float; (* virtual seconds on the event clock *)
  total_bytes : int;
  detected : int; (* cheating epochs caught *)
  undetected : int; (* cheating epochs missed *)
  false_alarms : int;
      (* honest servers flagged by crypto alone (no channel fault
         involved) — must be 0 *)
  honest_passed : int;
  channel_timeouts : int; (* outcomes blamed on an unresponsive channel *)
  channel_tampering : int; (* outcomes blamed on in-flight corruption *)
  records : Sc_audit.Optimal.audit_record list;
}

val run : config -> stats

val detection_rate : stats -> float
(** detected / (detected + undetected); 1.0 when nothing cheated. *)

val learned_costs : ?a3:float -> stats -> Sc_audit.Optimal.costs
(** Theorem 3 history learning over the run's audit records. *)

(** {2 Service-layer soak campaign}

    Mixed traffic through the sharded multi-tenant
    {!Sc_service.Service} front end: every identity is admitted (with
    a strided stream of light lookups riding along), a heavy-tenant
    subset stores files and is audited — storage and computation,
    over the fault-injectable wire — for a configured number of
    rounds, and a chosen few heavy tenants have their stored data
    silently corrupted first, giving the campaign ground truth to
    classify every alarm against.  Backpressure is part of the
    workload: the identity stream deliberately outruns the queues, so
    submission interleaves with drains on typed [Overloaded]
    rejections.

    All results are deterministic in the seed and independent of
    [SECCLOUD_DOMAINS] — {!Sc_service.Service.digest} is the witness
    the CLI's [--identity-check] compares across domain counts. *)

type service_config = {
  sv_seed : string;
  sv_params : Sc_pairing.Params.t lazy_t;
  sv_service : Sc_service.Service.config;
  sv_identities : int;  (** distinct tenants admitted *)
  sv_lookup_stride : int;
      (** every k-th identity also sends a lookup; 0 disables *)
  sv_heavy : int;  (** tenants doing full store/audit/compute crypto *)
  sv_corrupt : int;  (** heavy tenants whose stored file rots *)
  sv_blocks_per_file : int;
  sv_ints_per_block : int;
  sv_tasks : int;  (** sub-tasks per outsourced computation *)
  sv_samples : int;
      (** audit sample size; >= blocks_per_file means full coverage,
          so a corrupted block can never be missed by sampling *)
  sv_audit_rounds : int;
  sv_dynamic_ops : int;
      (** dynamic mutation ops per heavy tenant (update / append /
          tombstone bursts against a {!Sc_storage.Dynamic} view of the
          stored file, one signed root transition per burst, audited
          with rank proofs); 0 disables the mutation wave *)
}

val default_service_config : service_config
(** Toy params: 20k identities, 64 heavy tenants (8 corrupted),
    2 audit rounds, 6 dynamic ops per heavy tenant, the default
    service config. *)

type service_protocol = {
  sp_name : string;  (** span name, e.g. ["service.audit"] *)
  sp_count : int;
  sp_p50_us : float;
  sp_p99_us : float;
}

type service_stats = {
  sv_ledger : Sc_service.Service.ledger;
  sv_digest : string;  (** the cross-domain value-identity witness *)
  sv_shard_tenants : int array;  (** admitted tenants per shard *)
  sv_false_alarms : int;
      (** honest-tenant audits that failed with a clean channel and
          no injected in-flight tampering — must be 0 *)
  sv_detected : int;  (** corrupted-tenant audits that raised *)
  sv_missed : int;
      (** corrupted-tenant storage audits that passed cleanly *)
  sv_channel_suspected : int;
      (** failures coinciding with injected in-flight tampering *)
  sv_elapsed_s : float;
  sv_audit_elapsed_s : float;  (** the audit-rounds phase alone *)
  sv_audits_per_sec : float;
      (** (storage audits + computation audits) / audit phase *)
  sv_requests_per_sec : float;  (** processed / elapsed *)
  sv_protocols : service_protocol list;
      (** per-protocol latency from the [span.service.*] histograms *)
}

val run_service : service_config -> service_stats

val service_metrics : service_config -> service_stats -> (string * float) list
(** The flat numeric namespace shared by {!service_stats_json} and
    {!check_service_slos}: ledger fields, classification counters,
    throughput figures and per-protocol ["count(service.store)"] /
    ["p50_us(...)"] / ["p99_us(...)"] entries. *)

val service_stats_json :
  ?slos:Sc_telemetry.Slo.check list ->
  service_config ->
  service_stats ->
  string
(** The BENCH_service.json document: every {!service_metrics} entry
    plus the digest, and the SLO verdicts when given. *)

val check_service_slos :
  service_config ->
  service_stats ->
  string ->
  (Sc_telemetry.Slo.check list, string) result
(** Evaluate a [bench/service.slo]-grammar document against
    {!service_metrics}. *)
