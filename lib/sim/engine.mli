(** The end-to-end cloud simulation: n servers under a mobile
    Byzantine adversary, users storing data and outsourcing
    computation, the DA auditing every execution — all driven through
    a discrete-event clock, a network cost model and a
    fault-injectable {!Seccloud.Transport} channel per (user, server)
    pair.

    Each epoch the adversary corrupts a fresh subset of at most b
    servers (§III-B); every audit outcome is compared against ground
    truth, giving detection statistics and the audit-cost history that
    feeds Theorem 3's "history learning".  With lossy [faults] the
    campaign still terminates: rounds that exhaust their retries are
    blamed as typed channel failures rather than raising. *)

type config = {
  seed : string;
  params : Sc_pairing.Params.t lazy_t;
  n_servers : int;
  byzantine_bound : int;
  n_users : int;
  blocks_per_file : int;
  ints_per_block : int;
  tasks_per_service : int;
  samples_per_audit : int;
  epochs : int;
  network : Network.config;
  cheat_damage : float; (* damage of an undetected cheating epoch *)
  faults : Seccloud.Transport.faults; (* injected channel faults *)
  retry : Seccloud.Transport.Retry.policy;
}

val default_config : config
(** Toy parameters, 4 servers / b = 1, 2 users, 5 epochs, a perfect
    channel with the default retry policy. *)

type audit_outcome = {
  epoch : int;
  server : string;
  user : string;
  server_cheats : bool; (* ground truth *)
  storage_ok : bool;
  computation_ok : bool;
  channel_timeout : bool; (* some round exhausted retries silently *)
  channel_tampered : bool; (* some round kept arriving mangled *)
  samples : int;
  bytes : int; (* wire bytes for the whole campaign, retries included *)
  recompute_seconds : float;
}

type stats = {
  outcomes : audit_outcome list;
  sim_time : float; (* virtual seconds on the event clock *)
  total_bytes : int;
  detected : int; (* cheating epochs caught *)
  undetected : int; (* cheating epochs missed *)
  false_alarms : int;
      (* honest servers flagged by crypto alone (no channel fault
         involved) — must be 0 *)
  honest_passed : int;
  channel_timeouts : int; (* outcomes blamed on an unresponsive channel *)
  channel_tampering : int; (* outcomes blamed on in-flight corruption *)
  records : Sc_audit.Optimal.audit_record list;
}

val run : config -> stats

val detection_rate : stats -> float
(** detected / (detected + undetected); 1.0 when nothing cheated. *)

val learned_costs : ?a3:float -> stats -> Sc_audit.Optimal.costs
(** Theorem 3 history learning over the run's audit records. *)
