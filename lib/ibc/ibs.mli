(** The identity-based signature underlying the paper's Data Signing
    step (§V-B1):

    - sign:   r ← Z_q*, U = r·Q_ID, h = H2(U ‖ m), V = (r + h)·sk_ID
    - verify: ê(V, P) = ê(U + h·Q_ID, P_pub)

    The raw (U, V) pair is publicly verifiable; the designated-verifier
    transform of {!Dvs} is what the protocol actually publishes. *)

open Sc_bignum
open Sc_ec

type t = { u : Curve.point; v : Curve.point }

val h2 : Setup.public -> u:Curve.point -> msg:string -> Nat.t
(** The hash h = H2(U ‖ m) used by both sign and verify. *)

val sign :
  Setup.public ->
  Setup.identity_key ->
  bytes_source:(int -> string) ->
  string ->
  t

val verify : Setup.public -> signer:string -> msg:string -> t -> bool
(** Checks ê(V, P)·ê(−W, P_pub) = 1 as one 2-term
    {!Sc_pairing.Tate.multi_pairing} — a single shared Miller loop
    instead of the two pairings of the textbook equation. *)

val verify_batch : Setup.public -> (string * string * t) list -> bool
(** [verify_batch pub [(signer, msg, sig); …]] verifies every
    signature with one 2-term multi-pairing total (plus two scalar
    multiplications per entry), using batch-transcript-derived
    combining coefficients to prevent cross-signature cancellation.
    Accepts the empty batch.  A [true] verdict is overwhelmingly (not
    absolutely) sound, as usual for small-exponent batch tests; on
    [false], re-check individually with {!verify} to attribute
    blame. *)

val verification_point :
  Setup.public -> q_id:Curve.point -> msg:string -> u:Curve.point -> Curve.point
(** [U + H2(U‖m)·Q_ID] — the G1 element all verification flavours
    (public, designated, aggregated) pair against. *)

val to_bytes : Setup.public -> t -> string
val of_bytes : Setup.public -> string -> t option
