open Sc_ec
module Tate = Sc_pairing.Tate

type entry = { signer : string; msg : string; dvs : Dvs.t }

let verify_batch (pub : Setup.public) ~verifier_key entries =
  let prm = pub.prm in
  let well_formed e = Sc_pairing.Params.in_subgroup prm e.dvs.Dvs.u in
  List.for_all well_formed entries
  &&
  (* Q_ID lookups are memoized: a batch typically has few signers. *)
  let q_cache = Hashtbl.create 8 in
  let q_of signer =
    match Hashtbl.find_opt q_cache signer with
    | Some q -> q
    | None ->
      let q = Setup.q_of_id pub signer in
      Hashtbl.add q_cache signer q;
      q
  in
  let u_agg, sigma_agg =
    List.fold_left
      (fun (u_acc, s_acc) e ->
        let q_id = q_of e.signer in
        let w = Ibs.verification_point pub ~q_id ~msg:e.msg ~u:e.dvs.Dvs.u in
        Curve.add prm.curve u_acc w, Tate.gt_mul prm s_acc e.dvs.Dvs.sigma)
      (Curve.infinity, Tate.gt_one) entries
  in
  (* The aggregate Σ lives in GT, so only the U_A side is a Miller
     term; routing it through the precomputed multi-pairing keeps the
     whole audit layer on the shared-Miller entry point (and its
     one-per-equation pairing count), replaying the verifier key's
     cached line tables. *)
  Tate.gt_equal
    (Tate.multi_pairing_precomp prm
       [ u_agg, Tate.precomp_for prm verifier_key.Setup.sk ])
    sigma_agg

let aggregate_size_bytes (pub : Setup.public) entries =
  let prm = pub.prm in
  let u_agg, sigma_agg =
    List.fold_left
      (fun (u_acc, s_acc) (e : entry) ->
        let q_id = Setup.q_of_id pub e.signer in
        let w = Ibs.verification_point pub ~q_id ~msg:e.msg ~u:e.dvs.Dvs.u in
        Curve.add prm.curve u_acc w, Tate.gt_mul prm s_acc e.dvs.Dvs.sigma)
      (Curve.infinity, Tate.gt_one) entries
  in
  String.length (Curve.to_bytes prm.curve u_agg)
  + String.length (Tate.gt_to_bytes prm sigma_agg)
