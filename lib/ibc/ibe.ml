module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1
module Curve = Sc_ec.Curve
module Hmac = Sc_hash.Hmac

type ciphertext = { u : Curve.point; body : string; tag : string }

(* Key material from the pairing value: independent keystream and MAC
   keys by domain separation, over the canonical length-prefixed
   framing so no (label, input) pair can alias another across part
   boundaries. *)
let derive prm k label =
  Sc_hash.Encode.digest [ "ibe-derive"; label; Tate.gt_to_bytes prm k ]

let keystream prm k len =
  let seed = derive prm k "ks" in
  let buf = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length buf < len do
    Buffer.add_string buf
      (Sc_hash.Encode.digest [ "ibe-ks-block"; seed; string_of_int !counter ]);
    incr counter
  done;
  Buffer.sub buf 0 len

let xor_string a b =
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let mac prm k ~u_bytes ~body =
  Hmac.mac_concat ~key:(derive prm k "mac")
    (Sc_hash.Encode.frame [ "ibe-mac"; u_bytes; body ])

let encrypt (pub : Setup.public) ~to_identity ~bytes_source msg =
  let prm = pub.Setup.prm in
  let q_id = Hash_g1.hash_to_point prm ("id:" ^ to_identity) in
  let r = Params.random_scalar prm ~bytes_source in
  let u = Params.mul_g prm r in
  (* ê(Q_ID, P_pub) = ê(P_pub, Q_ID) (both subgroup points), replayed
     from the cached line tables of the fixed P_pub. *)
  let k =
    Tate.gt_pow prm
      (Tate.pairing_precomp prm q_id (Tate.precomp_for prm pub.Setup.p_pub))
      r
  in
  let body = xor_string msg (keystream prm k (String.length msg)) in
  let u_bytes = Curve.to_bytes prm.Params.curve u in
  { u; body; tag = mac prm k ~u_bytes ~body }

let decrypt (pub : Setup.public) ~key { u; body; tag } =
  let prm = pub.Setup.prm in
  if not (Curve.on_curve prm.Params.curve u) then None
  else begin
    (* Replaying sk's tables at u computes exactly ê(sk, u) — the
       fixed key is the trajectory either way, so no symmetry argument
       is needed for the untrusted u. *)
    let k = Tate.pairing_precomp prm u (Tate.precomp_for prm key.Setup.sk) in
    let u_bytes = Curve.to_bytes prm.Params.curve u in
    if not (String.equal tag (mac prm k ~u_bytes ~body)) then None
    else Some (xor_string body (keystream prm k (String.length body)))
  end

let ciphertext_to_bytes (pub : Setup.public) { u; body; tag } =
  let u_bytes = Curve.to_bytes pub.Setup.prm.Params.curve u in
  Printf.sprintf "%04d" (String.length u_bytes)
  ^ u_bytes
  ^ Printf.sprintf "%08d" (String.length body)
  ^ body ^ tag

let ciphertext_of_bytes (pub : Setup.public) s =
  let ( let* ) = Option.bind in
  let* ulen = if String.length s >= 4 then int_of_string_opt (String.sub s 0 4) else None in
  let* () = if String.length s >= 4 + ulen + 8 then Some () else None in
  let* u = Curve.of_bytes pub.Setup.prm.Params.curve (String.sub s 4 ulen) in
  let* blen = int_of_string_opt (String.sub s (4 + ulen) 8) in
  let rest = 4 + ulen + 8 in
  if blen < 0 || String.length s <> rest + blen + 32 then None
  else
    Some
      { u; body = String.sub s rest blen; tag = String.sub s (rest + blen) 32 }
