open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

type public = { prm : Params.t; p_pub : Curve.point }
type sio = { pub : public; s : Nat.t }
type identity_key = { id : string; q_id : Curve.point; sk : Curve.point }

let create prm ~bytes_source =
  let s = Params.random_scalar prm ~bytes_source in
  let p_pub = Params.mul_g prm s in
  { pub = { prm; p_pub }; s }

let public sio = sio.pub
let master_secret sio = sio.s

let extract sio id =
  let prm = sio.pub.prm in
  let q_id = Hash_g1.hash_to_point prm ("id:" ^ id) in
  { id; q_id; sk = Curve.mul prm.curve sio.s q_id }

let q_of_id pub id = Hash_g1.hash_to_point pub.prm ("id:" ^ id)

(* ê(sk, P) = ê(Q_ID, P_pub), checked as a one-Miller-loop 2-term
   multi-pairing ê(sk, P)·ê(−Q_ID, P_pub) = 1, replayed from the
   cached line tables of the fixed P / P_pub.  The replayed product
   relies on pairing symmetry, so the untrusted sk is checked into the
   subgroup first (Q_ID is in it by construction). *)
let valid_key pub (key : identity_key) =
  let prm = pub.prm in
  Params.in_subgroup prm key.sk
  && Tate.gt_is_one
       (Tate.multi_pairing_precomp prm
          [
            key.sk, Tate.precomp_for prm prm.g;
            Curve.neg prm.curve key.q_id, Tate.precomp_for prm pub.p_pub;
          ])
