open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1
module Encode = Sc_hash.Encode
module Telemetry = Sc_telemetry.Telemetry

let c_sign = Telemetry.counter "ibs.sign"
let c_verify = Telemetry.counter "ibs.verify"
let c_verify_batch = Telemetry.counter "ibs.verify_batch"
let c_verify_batch_sigs = Telemetry.counter "ibs.verify_batch_sigs"

type t = { u : Curve.point; v : Curve.point }

let h2 (pub : Setup.public) ~u ~msg =
  let prm = pub.prm in
  Hash_g1.hash_to_scalar prm
    (Encode.canonical [ "ibs-h2"; Curve.to_bytes prm.curve u; msg ])

let sign (pub : Setup.public) (key : Setup.identity_key) ~bytes_source msg =
  Telemetry.incr c_sign;
  let prm = pub.prm in
  let r = Params.random_scalar prm ~bytes_source in
  let u = Curve.mul_precomp prm.curve (Params.precomp_for prm key.q_id) r in
  let h = h2 pub ~u ~msg in
  let v = Curve.mul prm.curve (Nat.rem (Nat.add r h) prm.q) key.sk in
  { u; v }

(* U + h·Q_ID, the G1 element both verification flavours pair against.
   Q_ID is a fixed base per identity, so h·Q_ID runs over the cached
   comb tables. *)
let verification_point (pub : Setup.public) ~q_id ~msg ~u =
  let prm = pub.prm in
  let h = h2 pub ~u ~msg in
  Curve.add prm.curve u
    (Curve.mul_precomp prm.curve (Params.precomp_for prm q_id) h)

(* ê(V, P) = ê(W, P_pub) is checked as ê(V, P)·ê(−W, P_pub) = 1: a
   single 2-term multi-pairing (one shared Miller chain, one final
   exponentiation) instead of two full pairings, replayed from the
   precomputed line tables of the fixed arguments P and P_pub.  The
   precomputed form evaluates ê(P, V)·ê(P_pub, −W), equal by pairing
   symmetry on the order-q subgroup — hence the subgroup check on the
   untrusted signature points (U, V), which also rules out the
   cofactor-component malleability the swapped evaluation would not
   see. *)
let verify (pub : Setup.public) ~signer ~msg { u; v } =
  Telemetry.incr c_verify;
  Telemetry.with_span ~name:"ibs.verify" (fun () ->
      let prm = pub.prm in
      Params.in_subgroup prm u
      && Params.in_subgroup prm v
      &&
      let q_id = Setup.q_of_id pub signer in
      let w = verification_point pub ~q_id ~msg ~u in
      Tate.gt_is_one
        (Tate.multi_pairing_precomp prm
           [
             v, Tate.precomp_for prm prm.g;
             Curve.neg prm.curve w, Tate.precomp_for prm pub.p_pub;
           ]))

let to_bytes (pub : Setup.public) { u; v } =
  let c = pub.prm.curve in
  let su = Curve.to_bytes c u in
  Printf.sprintf "%04d" (String.length su) ^ su ^ Curve.to_bytes c v

let of_bytes (pub : Setup.public) s =
  let c = pub.prm.curve in
  if String.length s < 4 then None
  else
    match int_of_string_opt (String.sub s 0 4) with
    | None -> None
    | Some n when String.length s < 4 + n -> None
    | Some n ->
      let su = String.sub s 4 n in
      let sv = String.sub s (4 + n) (String.length s - 4 - n) in
      (match Curve.of_bytes c su, Curve.of_bytes c sv with
      | Some u, Some v -> Some { u; v }
      | None, _ | _, None -> None)

(* Batched public verification of t signatures with one 2-term
   multi-pairing: since every signature pairs against the same fixed
   points P and P_pub, Π ê(c_i·V_i, P)·ê(−c_i·W_i, P_pub) collapses to
   ê(Σ c_i·V_i, P)·ê(−Σ c_i·W_i, P_pub).  The combining coefficients
   c_i are derived by hashing the whole batch transcript (a
   derandomized small-exponent test), so an adversary cannot arrange
   cross-signature cancellation without already controlling the
   hash. *)
let verify_batch (pub : Setup.public) entries =
  entries = []
  ||
  (Telemetry.incr c_verify_batch;
   Telemetry.add c_verify_batch_sigs (List.length entries);
   Telemetry.with_span ~name:"ibs.verify_batch"
     ~attrs:[ "sigs", string_of_int (List.length entries) ]
   @@ fun () ->
   let prm = pub.prm in
   List.for_all
    (fun (_, _, { u; v }) ->
      Params.in_subgroup prm u && Params.in_subgroup prm v)
    entries
  &&
  (* Flat canonical encoding: each entry contributes exactly three
     parts, so the triple grouping is unambiguous. *)
  let transcript =
    Encode.canonical
      (List.concat_map
         (fun (signer, msg, s) -> [ signer; msg; to_bytes pub s ])
         entries)
  in
  let v_sum, w_sum, _ =
    List.fold_left
      (fun (v_acc, w_acc, i) (signer, msg, { u; v }) ->
        let c =
          Hash_g1.hash_to_scalar prm
            (Encode.canonical [ "ibs-batch"; string_of_int i; transcript ])
        in
        let q_id = Setup.q_of_id pub signer in
        let w = verification_point pub ~q_id ~msg ~u in
        ( Curve.add prm.curve v_acc (Curve.mul prm.curve c v),
          Curve.add prm.curve w_acc (Curve.mul prm.curve c w),
          i + 1 ))
      (Curve.infinity, Curve.infinity, 0)
      entries
  in
   Tate.gt_is_one
     (Tate.multi_pairing_precomp prm
        [
          v_sum, Tate.precomp_for prm prm.g;
          Curve.neg prm.curve w_sum, Tate.precomp_for prm pub.p_pub;
        ]))
