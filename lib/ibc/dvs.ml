open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate

type t = { u : Curve.point; sigma : Tate.gt }

(* The designated verifier's key material is the fixed pairing
   argument in every operation here, so all three entry points replay
   its cached Miller tables (all points involved are subgroup members:
   Q_B and sk by construction, V/W from verified signatures). *)

let designate (pub : Setup.public) (raw : Ibs.t) ~verifier =
  let prm = pub.prm in
  let q_b = Setup.q_of_id pub verifier in
  { u = raw.Ibs.u; sigma = Tate.pairing_precomp prm raw.Ibs.v (Tate.precomp_for prm q_b) }

let verify (pub : Setup.public) ~verifier_key ~signer ~msg { u; sigma } =
  let prm = pub.prm in
  Curve.on_curve prm.curve u
  &&
  let q_id = Setup.q_of_id pub signer in
  let w = Ibs.verification_point pub ~q_id ~msg ~u in
  Tate.gt_equal sigma
    (Tate.pairing_precomp prm w (Tate.precomp_for prm verifier_key.Setup.sk))

let simulate (pub : Setup.public) ~verifier_key ~signer ~msg ~bytes_source =
  let prm = pub.prm in
  let q_id = Setup.q_of_id pub signer in
  let r = Params.random_scalar prm ~bytes_source in
  let u = Curve.mul_precomp prm.curve (Params.precomp_for prm q_id) r in
  let w = Ibs.verification_point pub ~q_id ~msg ~u in
  {
    u;
    sigma =
      Tate.pairing_precomp prm w (Tate.precomp_for prm verifier_key.Setup.sk);
  }
