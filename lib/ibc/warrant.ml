type t = {
  delegator : string;
  delegatee : string;
  issued_at : float;
  expires_at : float;
  scope : string;
}

type signed = { warrant : t; signature : Ibs.t }

(* Canonical framing: delegator / delegatee / scope are free-form
   strings, so the old "warrant|%s|%s|...|%s" format was forgeable by
   delimiter injection (a delegatee named "b|0|0|s" shifting every
   later field). *)
let encode w =
  Sc_hash.Encode.canonical
    [
      "warrant";
      w.delegator;
      w.delegatee;
      Printf.sprintf "%.6f" w.issued_at;
      Printf.sprintf "%.6f" w.expires_at;
      w.scope;
    ]

let issue pub (key : Setup.identity_key) ~bytes_source ~delegatee ~now ~lifetime
    ~scope =
  let warrant =
    {
      delegator = key.Setup.id;
      delegatee;
      issued_at = now;
      expires_at = now +. lifetime;
      scope;
    }
  in
  { warrant; signature = Ibs.sign pub key ~bytes_source (encode warrant) }

let expired ~now w = now > w.expires_at || now < w.issued_at

let verify pub ~now { warrant; signature } =
  (not (expired ~now warrant))
  && Ibs.verify pub ~signer:warrant.delegator ~msg:(encode warrant) signature
