open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

type keypair = { x : Nat.t; pk : Curve.point }

let generate (prm : Params.t) ~bytes_source =
  let x = Params.random_scalar prm ~bytes_source in
  { x; pk = Params.mul_g prm x }

let hash_msg prm msg = Hash_g1.hash_to_point prm ("bls:" ^ msg)
let sign (prm : Params.t) kp msg = Curve.mul prm.curve kp.x (hash_msg prm msg)

(* Both pairings replay cached line tables of their fixed argument (P
   and the public key); the symmetry this relies on holds only on the
   order-q subgroup, hence the subgroup check on the untrusted σ (the
   hash point is a member by construction). *)
let verify (prm : Params.t) pk msg sigma =
  Params.in_subgroup prm sigma
  && Tate.gt_equal
       (Tate.pairing_precomp prm sigma (Tate.precomp_for prm prm.g))
       (Tate.pairing_precomp prm (hash_msg prm msg) (Tate.precomp_for prm pk))

let aggregate (prm : Params.t) sigmas =
  List.fold_left (Curve.add prm.curve) Curve.infinity sigmas

let verify_aggregate (prm : Params.t) entries sigma =
  let msgs = List.map snd entries in
  let distinct = List.length (List.sort_uniq String.compare msgs) = List.length msgs in
  distinct
  && Params.in_subgroup prm sigma
  &&
  let lhs = Tate.pairing_precomp prm sigma (Tate.precomp_for prm prm.g) in
  let rhs =
    List.fold_left
      (fun acc (pk, msg) ->
        Tate.gt_mul prm acc
          (Tate.pairing_precomp prm (hash_msg prm msg)
             (Tate.precomp_for prm pk)))
      Tate.gt_one entries
  in
  Tate.gt_equal lhs rhs
