open Sc_bignum
open Sc_field
module M = Fp.Mont

let c_mul_wnaf = Sc_telemetry.Telemetry.counter "curve.mul.wnaf"

type t = {
  fld : Fp.ctx;
  a : Fp.el;
  b : Fp.el;
  coord_bytes : int;
  has_mont : bool; (* odd characteristic: the Montgomery fast paths apply *)
  ma : M.e Lazy.t; (* curve coefficient a in the Montgomery domain *)
}

type point = Infinity | Affine of Fp.el * Fp.el

let create fld ~a ~b =
  (* Reject singular curves: 4a³ + 27b² ≠ 0. *)
  let disc =
    Fp.add fld
      (Fp.mul fld (Fp.of_int fld 4) (Fp.mul fld a (Fp.sqr fld a)))
      (Fp.mul fld (Fp.of_int fld 27) (Fp.sqr fld b))
  in
  if Fp.is_zero disc then invalid_arg "Curve.create: singular curve";
  let coord_bytes = (Nat.bit_length (Fp.characteristic fld) + 7) / 8 in
  let has_mont = not (Nat.is_even (Fp.characteristic fld)) in
  { fld; a; b; coord_bytes; has_mont; ma = lazy (M.enter fld a) }

let field c = c.fld
let coeff_a c = c.a
let coeff_b c = c.b
let infinity = Infinity

let is_infinity = function Infinity -> true | Affine _ -> false

let equal p q =
  match p, q with
  | Infinity, Infinity -> true
  | Affine (x1, y1), Affine (x2, y2) -> Fp.equal x1 x2 && Fp.equal y1 y2
  | Infinity, Affine _ | Affine _, Infinity -> false

(* x³ + ax + b *)
let rhs c x =
  let f = c.fld in
  Fp.add f (Fp.mul f x (Fp.add f (Fp.sqr f x) c.a)) c.b

let on_curve c = function
  | Infinity -> true
  | Affine (x, y) -> Fp.equal (Fp.sqr c.fld y) (rhs c x)

let neg c = function
  | Infinity -> Infinity
  | Affine (x, y) -> Affine (x, Fp.neg c.fld y)

let double c p =
  match p with
  | Infinity -> Infinity
  | Affine (x, y) ->
    let f = c.fld in
    if Fp.is_zero y then Infinity
    else begin
      (* λ = (3x² + a) / 2y *)
      let num = Fp.add f (Fp.mul f (Fp.of_int f 3) (Fp.sqr f x)) c.a in
      let lam = Fp.div f num (Fp.double f y) in
      let x3 = Fp.sub f (Fp.sqr f lam) (Fp.double f x) in
      let y3 = Fp.sub f (Fp.mul f lam (Fp.sub f x x3)) y in
      Affine (x3, y3)
    end

let add c p q =
  match p, q with
  | Infinity, r | r, Infinity -> r
  | Affine (x1, y1), Affine (x2, y2) ->
    let f = c.fld in
    if Fp.equal x1 x2 then begin
      if Fp.equal y1 y2 then double c p else Infinity
    end
    else begin
      let lam = Fp.div f (Fp.sub f y2 y1) (Fp.sub f x2 x1) in
      let x3 = Fp.sub f (Fp.sub f (Fp.sqr f lam) x1) x2 in
      let y3 = Fp.sub f (Fp.mul f lam (Fp.sub f x1 x3)) y1 in
      Affine (x3, y3)
    end

let sub c p q = add c p (neg c q)

(* Jacobian coordinates (X : Y : Z) with x = X/Z², y = Y/Z³; Z = 0
   encodes the point at infinity.  Scalar multiplication runs in
   Jacobian form so that the whole ladder needs a single field
   inversion, instead of one per group operation. *)
type jac = { jx : Fp.el; jy : Fp.el; jz : Fp.el }

let jac_infinity = { jx = Fp.one; jy = Fp.one; jz = Fp.zero }

let jac_of_point = function
  | Infinity -> jac_infinity
  | Affine (x, y) -> { jx = x; jy = y; jz = Fp.one }

let point_of_jac c j =
  let f = c.fld in
  if Fp.is_zero j.jz then Infinity
  else begin
    let zinv = Fp.inv f j.jz in
    let zinv2 = Fp.sqr f zinv in
    Affine (Fp.mul f j.jx zinv2, Fp.mul f j.jy (Fp.mul f zinv2 zinv))
  end

(* dbl-2007-bl, valid for any curve coefficient a. *)
let jdouble c j =
  let f = c.fld in
  if Fp.is_zero j.jz || Fp.is_zero j.jy then jac_infinity
  else begin
    let xx = Fp.sqr f j.jx in
    let yy = Fp.sqr f j.jy in
    let yyyy = Fp.sqr f yy in
    let zz = Fp.sqr f j.jz in
    let s =
      Fp.double f
        (Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jx yy)) xx) yyyy)
    in
    let m =
      Fp.add f
        (Fp.add f (Fp.double f xx) xx)
        (Fp.mul f c.a (Fp.sqr f zz))
    in
    let t = Fp.sub f (Fp.sqr f m) (Fp.double f s) in
    let y3 =
      Fp.sub f
        (Fp.mul f m (Fp.sub f s t))
        (Fp.double f (Fp.double f (Fp.double f yyyy)))
    in
    let z3 = Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jy j.jz)) yy) zz in
    { jx = t; jy = y3; jz = z3 }
  end

(* madd-2007-bl: mixed addition with an affine second operand. *)
let jadd_mixed c j x2 y2 =
  let f = c.fld in
  if Fp.is_zero j.jz then { jx = x2; jy = y2; jz = Fp.one }
  else begin
    let z1z1 = Fp.sqr f j.jz in
    let u2 = Fp.mul f x2 z1z1 in
    let s2 = Fp.mul f y2 (Fp.mul f j.jz z1z1) in
    if Fp.equal u2 j.jx then begin
      if Fp.equal s2 j.jy then jdouble c j else jac_infinity
    end
    else begin
      let h = Fp.sub f u2 j.jx in
      let hh = Fp.sqr f h in
      let i = Fp.double f (Fp.double f hh) in
      let jj = Fp.mul f h i in
      let r = Fp.double f (Fp.sub f s2 j.jy) in
      let v = Fp.mul f j.jx i in
      let x3 = Fp.sub f (Fp.sub f (Fp.sqr f r) jj) (Fp.double f v) in
      let y3 =
        Fp.sub f
          (Fp.mul f r (Fp.sub f v x3))
          (Fp.double f (Fp.mul f j.jy jj))
      in
      let z3 = Fp.sub f (Fp.sub f (Fp.sqr f (Fp.add f j.jz h)) z1z1) hh in
      { jx = x3; jy = y3; jz = z3 }
    end
  end

let mul_naive c k p =
  match p with
  | Infinity -> Infinity
  | Affine (px, py) ->
    if Nat.is_zero k then Infinity
    else begin
      let nbits = Nat.bit_length k in
      let rec go acc i =
        if i < 0 then acc
        else begin
          let acc = jdouble c acc in
          let acc = if Nat.test_bit k i then jadd_mixed c acc px py else acc in
          go acc (i - 1)
        end
      in
      point_of_jac c (go (jac_of_point p) (nbits - 2))
    end

(* ------------------------------------------------------------------ *)
(* Montgomery-resident Jacobian machinery: the same dbl-2007-bl /
   madd-2007-bl formulas as above, but over Fp.Mont so every field
   multiplication is a single fused REDC.  All operations here stay
   strict (canonical outputs) because the group law compares
   coordinates for the doubling/inverse cases. *)

type mjac = { mx : M.e; my : M.e; mz : M.e }

let mjac_infinity f = { mx = M.one f; my = M.one f; mz = M.zero f }

let mjdouble f ma j =
  if M.is_zero j.mz || M.is_zero j.my then mjac_infinity f
  else begin
    let xx = M.sqr f j.mx in
    let yy = M.sqr f j.my in
    let yyyy = M.sqr f yy in
    let zz = M.sqr f j.mz in
    let s =
      M.double f (M.sub f (M.sub f (M.sqr f (M.add f j.mx yy)) xx) yyyy)
    in
    let m = M.add f (M.add f (M.double f xx) xx) (M.mul f ma (M.sqr f zz)) in
    let t = M.sub f (M.sqr f m) (M.double f s) in
    let y3 =
      M.sub f
        (M.mul f m (M.sub f s t))
        (M.double f (M.double f (M.double f yyyy)))
    in
    let z3 = M.sub f (M.sub f (M.sqr f (M.add f j.my j.mz)) yy) zz in
    { mx = t; my = y3; mz = z3 }
  end

let mjadd_mixed f ma j x2 y2 =
  if M.is_zero j.mz then { mx = x2; my = y2; mz = M.one f }
  else begin
    let z1z1 = M.sqr f j.mz in
    let u2 = M.mul f x2 z1z1 in
    let s2 = M.mul f y2 (M.mul f j.mz z1z1) in
    if M.equal u2 j.mx then begin
      if M.equal s2 j.my then mjdouble f ma j else mjac_infinity f
    end
    else begin
      let h = M.sub f u2 j.mx in
      let hh = M.sqr f h in
      let i = M.double f (M.double f hh) in
      let jj = M.mul f h i in
      let r = M.double f (M.sub f s2 j.my) in
      let v = M.mul f j.mx i in
      let x3 = M.sub f (M.sub f (M.sqr f r) jj) (M.double f v) in
      let y3 =
        M.sub f (M.mul f r (M.sub f v x3)) (M.double f (M.mul f j.my jj))
      in
      let z3 = M.sub f (M.sub f (M.sqr f (M.add f j.mz h)) z1z1) hh in
      { mx = x3; my = y3; mz = z3 }
    end
  end

let point_of_mjac c j =
  let f = c.fld in
  if M.is_zero j.mz then Infinity
  else begin
    let zi = M.inv f j.mz in
    let zi2 = M.sqr f zi in
    Affine
      ( M.leave f (M.mul f j.mx zi2),
        M.leave f (M.mul f j.my (M.mul f zi2 zi)) )
  end

(* Normalize a batch of Jacobian points to Montgomery affine with one
   shared inversion; infinity entries come back as None. *)
let mjac_batch_affine f jacs =
  let n = Array.length jacs in
  let live = ref [] in
  for i = n - 1 downto 0 do
    if not (M.is_zero jacs.(i).mz) then live := i :: !live
  done;
  let live = Array.of_list !live in
  let zs = Array.map (fun i -> jacs.(i).mz) live in
  let zinvs = if Array.length zs = 0 then [||] else M.batch_inv f zs in
  let out = Array.make n None in
  Array.iteri
    (fun li i ->
      let zi = zinvs.(li) in
      let zi2 = M.sqr f zi in
      out.(i) <-
        Some
          ( M.mul f jacs.(i).mx zi2,
            M.mul f jacs.(i).my (M.mul f zi2 zi) ))
    live;
  out

(* ------------------------------------------------------------------ *)
(* Windowed NAF (w = 5): digits in {0, ±1, ±3, …, ±15}, averaging one
   addition per w+1 doublings versus one per 2 for double-and-add. *)

let wnaf_window = 5

(* Most-significant digit first. *)
let wnaf_digits k =
  let tw = 1 lsl wnaf_window and hw = 1 lsl (wnaf_window - 1) in
  let digits = ref [] in
  let n = ref k in
  while not (Nat.is_zero !n) do
    let d =
      if Nat.test_bit !n 0 then begin
        let r = Nat.rem_int !n tw in
        if r >= hw then begin
          n := Nat.add !n (Nat.of_int (tw - r));
          r - tw
        end
        else begin
          n := Nat.sub !n (Nat.of_int r);
          r
        end
      end
      else 0
    in
    digits := d :: !digits;
    n := Nat.shift_right !n 1
  done;
  !digits

(* Odd multiples P, 3P, …, 15P as Montgomery-affine points (one
   inversion to normalize 2P, one batched inversion for the table).
   None for the whole table when 2P = O (2-torsion base): the wNAF
   recoding identity dP = P then needs no table at all, so the caller
   falls back to the plain ladder. *)
let wnaf_table f ma px py =
  let p2 = mjdouble f ma { mx = px; my = py; mz = M.one f } in
  if M.is_zero p2.mz then None
  else begin
    let zi = M.inv f p2.mz in
    let zi2 = M.sqr f zi in
    let tx = M.mul f p2.mx zi2 in
    let ty = M.mul f p2.my (M.mul f zi2 zi) in
    let njac = Array.make 8 { mx = px; my = py; mz = M.one f } in
    for i = 1 to 7 do
      (* (2i+1)·P = (2i-1)·P + 2P; mid-chain infinity (small-order
         bases) is handled by the batch normalizer returning None. *)
      njac.(i) <- mjadd_mixed f ma njac.(i - 1) tx ty
    done;
    Some (mjac_batch_affine f njac)
  end

let mul_wnaf c k px py =
  let f = c.fld in
  let ma = Lazy.force c.ma in
  match wnaf_table f ma (M.enter f px) (M.enter f py) with
  | None -> mul_naive c k (Affine (px, py))
  | Some table ->
    Sc_telemetry.Telemetry.incr c_mul_wnaf;
    let acc = ref (mjac_infinity f) in
    List.iter
      (fun d ->
        acc := mjdouble f ma !acc;
        if d <> 0 then begin
          match table.((abs d - 1) / 2) with
          | None -> ()
          | Some (tx, ty) ->
            let ty = if d < 0 then M.neg f ty else ty in
            acc := mjadd_mixed f ma !acc tx ty
        end)
      (wnaf_digits k);
    point_of_mjac c !acc

let mul c k p =
  match p with
  | Infinity -> Infinity
  | Affine (px, py) ->
    if Nat.is_zero k then Infinity
    else if c.has_mont then mul_wnaf c k px py
    else mul_naive c k p

let mul_int c k p =
  if k < 0 then neg c (mul c (Nat.of_int (-k)) p) else mul c (Nat.of_int k) p

(* ------------------------------------------------------------------ *)
(* Fixed-base comb: table.(w).(d) = d·16^w·P in affine form, so a
   b-bit scalar costs ⌈b/4⌉ mixed additions and zero doublings.  With
   an odd characteristic the tables are Montgomery-resident and built
   with one batched inversion per window (instead of one inversion per
   affine addition); the Barrett variant remains as the fallback. *)
type precomp =
  | Comb_mont of { mbits : int; mtables : (M.e * M.e) option array array }
  | Comb_affine of { bits : int; tables : point array array }

let precompute_affine c ~bits p =
  let nwindows = (bits + 3) / 4 in
  let tables = Array.init nwindows (fun _ -> Array.make 16 Infinity) in
  let base = ref p in
  for w = 0 to nwindows - 1 do
    for d = 1 to 15 do
      tables.(w).(d) <- add c tables.(w).(d - 1) !base
    done;
    (* advance base to 16^(w+1)·P *)
    base := double c (double c (double c (double c !base)))
  done;
  Comb_affine { tables; bits }

let precompute_mont c ~bits p =
  let f = c.fld in
  let ma = Lazy.force c.ma in
  let nwindows = (bits + 3) / 4 in
  let mtables = Array.init nwindows (fun _ -> Array.make 16 None) in
  (match p with
   | Infinity -> ()
   | Affine (x, y) ->
     let bx = ref (M.enter f x) and by = ref (M.enter f y) in
     let exhausted = ref false in
     let w = ref 0 in
     while (not !exhausted) && !w < nwindows do
       (* Window entries d·B in Jacobian via mixed additions of the
          affine base, plus the advanced base 16·B as a 17th entry, all
          normalized by one shared batch inversion. *)
       let jentries = Array.make 17 (mjac_infinity f) in
       for d = 1 to 15 do
         jentries.(d) <- mjadd_mixed f ma jentries.(d - 1) !bx !by
       done;
       let nb = ref jentries.(1) in
       for _ = 1 to 4 do
         nb := mjdouble f ma !nb
       done;
       jentries.(16) <- !nb;
       let affs = mjac_batch_affine f jentries in
       for d = 1 to 15 do
         mtables.(!w).(d) <- affs.(d)
       done;
       (match affs.(16) with
        | Some (nx, ny) ->
          bx := nx;
          by := ny
        | None -> exhausted := true (* 16·B = O: all later windows are O *));
       incr w
     done);
  Comb_mont { mbits = bits; mtables }

let precompute c ~bits p =
  if bits <= 0 then invalid_arg "Curve.precompute: bits <= 0";
  if c.has_mont then precompute_mont c ~bits p else precompute_affine c ~bits p

let comb_digit k w =
  let bit i = if Nat.test_bit k i then 1 else 0 in
  (bit ((4 * w) + 3) lsl 3)
  lor (bit ((4 * w) + 2) lsl 2)
  lor (bit ((4 * w) + 1) lsl 1)
  lor bit (4 * w)

let mul_precomp c pc k =
  match pc with
  | Comb_mont { mbits; mtables } ->
    if Nat.bit_length k > mbits then
      invalid_arg "Curve.mul_precomp: scalar exceeds precomputed range";
    let f = c.fld in
    let ma = Lazy.force c.ma in
    let acc = ref (mjac_infinity f) in
    for w = 0 to Array.length mtables - 1 do
      let d = comb_digit k w in
      if d <> 0 then begin
        match mtables.(w).(d) with
        | None -> ()
        | Some (x, y) -> acc := mjadd_mixed f ma !acc x y
      end
    done;
    point_of_mjac c !acc
  | Comb_affine { bits; tables } ->
    if Nat.bit_length k > bits then
      invalid_arg "Curve.mul_precomp: scalar exceeds precomputed range";
    let acc = ref jac_infinity in
    for w = 0 to Array.length tables - 1 do
      let d = comb_digit k w in
      if d <> 0 then begin
        match tables.(w).(d) with
        | Infinity -> ()
        | Affine (x, y) -> acc := jadd_mixed c !acc x y
      end
    done;
    point_of_jac c !acc

let lift_x c x =
  match Fp.sqrt c.fld (rhs c x) with
  | None -> None
  | Some y ->
    (* Pick the root with even least-significant bit for determinism. *)
    let y = if Nat.test_bit (Fp.to_nat y) 0 then Fp.neg c.fld y else y in
    Some (Affine (x, y))

let random c ~bytes_source =
  let rec draw () =
    let x = Fp.random c.fld ~bytes_source in
    match lift_x c x with
    | Some (Affine (_, y) as pt) ->
      (* Use one extra random bit to pick the sign of y. *)
      let flip = Char.code (bytes_source 1).[0] land 1 = 1 in
      if flip then Affine (x, Fp.neg c.fld y) else pt
    | Some Infinity | None -> draw ()
  in
  draw ()

let to_bytes c = function
  | Infinity -> "\x00"
  | Affine (x, y) ->
    let n = c.coord_bytes in
    "\x04"
    ^ Nat.to_bytes_be ~len:n (Fp.to_nat x)
    ^ Nat.to_bytes_be ~len:n (Fp.to_nat y)

let of_bytes c s =
  let n = c.coord_bytes in
  if s = "\x00" then Some Infinity
  else if String.length s = (2 * n) + 1 && s.[0] = '\x04' then begin
    let x = Nat.of_bytes_be (String.sub s 1 n) in
    let y = Nat.of_bytes_be (String.sub s (n + 1) n) in
    let p = Fp.characteristic c.fld in
    if Nat.compare x p >= 0 || Nat.compare y p >= 0 then None
    else begin
      let pt = Affine (x, y) in
      if on_curve c pt then Some pt else None
    end
  end
  else None

let pp fmt = function
  | Infinity -> Format.pp_print_string fmt "O"
  | Affine (x, y) -> Format.fprintf fmt "(%a, %a)" Fp.pp x Fp.pp y
