(** Short-Weierstrass elliptic curves y² = x³ + a·x + b over F_p, with
    affine group law and windowed scalar multiplication.  This is the
    group G1 of the pairing layer and the base group of the ECDSA
    baseline. *)

open Sc_bignum
open Sc_field

type t
(** A curve: field context plus coefficients. *)

type point = Infinity | Affine of Fp.el * Fp.el

val create : Fp.ctx -> a:Fp.el -> b:Fp.el -> t
(** @raise Invalid_argument when the curve is singular
    (4a³ + 27b² = 0). *)

val field : t -> Fp.ctx
val coeff_a : t -> Fp.el
val coeff_b : t -> Fp.el

val infinity : point
val is_infinity : point -> bool
val equal : point -> point -> bool

val on_curve : t -> point -> bool

val neg : t -> point -> point
val add : t -> point -> point -> point
val double : t -> point -> point
val sub : t -> point -> point -> point

val mul : t -> Nat.t -> point -> point
(** Scalar multiplication.  Over an odd characteristic this runs a
    width-5 windowed-NAF ladder in the Montgomery domain (counter
    [curve.mul.wnaf]); otherwise it falls back to {!mul_naive}. *)

val mul_naive : t -> Nat.t -> point -> point
(** Plain left-to-right double-and-add in Barrett-domain Jacobian
    coordinates — the reference implementation {!mul} is validated
    against. *)

val mul_int : t -> int -> point -> point

type precomp
(** Precomputed window tables for a fixed base point. *)

val precompute : t -> bits:int -> point -> precomp
(** Tables covering scalars up to [bits] bits (4-bit fixed windows,
    entries normalized to affine).  Costs ~4·bits point operations
    once; each subsequent {!mul_precomp} then needs only ~bits/4
    mixed additions and no doublings. *)

val mul_precomp : t -> precomp -> Nat.t -> point
(** Scalar multiplication against the precomputed base.
    @raise Invalid_argument if the scalar exceeds the table's range. *)

val lift_x : t -> Fp.el -> point option
(** A point with the given x-coordinate (the even-y root is chosen
    deterministically), if one exists. *)

val random : t -> bytes_source:(int -> string) -> point
(** A uniformly random non-infinity point via rejection on x. *)

val to_bytes : t -> point -> string
(** Uncompressed encoding: 0x00 for infinity, else 0x04 ‖ x ‖ y with
    fixed-width coordinates. *)

val of_bytes : t -> string -> point option
(** Decodes and validates curve membership. *)

val pp : Format.formatter -> point -> unit
