open Sc_bignum
open Sc_field
open Sc_ec
module Telemetry = Sc_telemetry.Telemetry

let c_precomp_hit = Telemetry.counter "pairing.precomp.hit"
let c_precomp_miss = Telemetry.counter "pairing.precomp.miss"

module SMap = Map.Make (String)

(* Per-parameter-set precomputation caches, keyed by point encoding.
   Reads are lock-free (an immutable map behind an [Atomic]); misses
   take the lock, re-check, compute, and publish — the same
   double-check shape as {!force_precomp} below.  A plain [Hashtbl]
   would not do: concurrent reads during a resize are undefined. *)
type 'a cache = { map : 'a SMap.t Atomic.t; lock : Mutex.t }

let cache_create () = { map = Atomic.make SMap.empty; lock = Mutex.create () }

type t = {
  p : Nat.t;
  q : Nat.t;
  cofactor : Nat.t;
  fp : Fp.ctx;
  curve : Curve.t;
  g : Curve.point;
  g_precomp : Curve.precomp Lazy.t;
  comb_cache : Curve.precomp cache;
  miller_cache : Miller.precomp cache;
}

let build ~p ~q ~cofactor ~g_of_curve =
  if Nat.rem_int p 4 <> 3 then invalid_arg "Params: p must be 3 mod 4";
  if not (Nat.equal (Nat.add p Nat.one) (Nat.mul cofactor q))
  then invalid_arg "Params: p + 1 <> cofactor * q";
  let fp = Fp.create p in
  Fp2.check_ctx fp;
  let curve = Curve.create fp ~a:Fp.one ~b:Fp.zero in
  let g = g_of_curve curve fp in
  if Curve.is_infinity g then invalid_arg "Params: generator is infinity";
  if not (Curve.on_curve curve g) then invalid_arg "Params: generator off curve";
  if not (Curve.is_infinity (Curve.mul curve q g))
  then invalid_arg "Params: generator order does not divide q";
  let g_precomp = lazy (Curve.precompute curve ~bits:(Nat.bit_length q) g) in
  {
    p;
    q;
    cofactor;
    fp;
    curve;
    g;
    g_precomp;
    comb_cache = cache_create ();
    miller_cache = cache_create ();
  }

let find_generator curve cofactor ~bytes_source _fp =
  let rec go () =
    let r = Curve.random curve ~bytes_source in
    let g = Curve.mul curve cofactor r in
    if Curve.is_infinity g then go () else g
  in
  go ()

let generate ?bits_p ~bytes_source ~bits_q () =
  let q = Prime.random_prime ~bytes_source ~bits:bits_q in
  (* p = c·q − 1 with 4 | c forces p ≡ 3 (mod 4) since q is odd.  With
     no target field size the smallest such cofactor is used; with
     [bits_p] the cofactor is drawn so that p has the requested width
     (paper-era parameter shapes like 512-bit p / 160-bit q). *)
  let p, cofactor =
    match bits_p with
    | None ->
      let rec find_p c =
        let cof = Nat.of_int c in
        let p = Nat.sub (Nat.mul cof q) Nat.one in
        if Prime.is_probably_prime ~bytes_source p then p, cof else find_p (c + 4)
      in
      find_p 4
    | Some bits_p ->
      if bits_p < bits_q + 3 then invalid_arg "Params.generate: bits_p too small";
      let cof_bits = bits_p - bits_q in
      let rec draw () =
        let r = Nat.random ~bytes_source ~bits:(cof_bits - 2) in
        (* Force the top bit and divisibility by 4. *)
        let cof =
          Nat.shift_left (Nat.add (Nat.shift_left Nat.one (cof_bits - 3)) r) 2
        in
        let p = Nat.sub (Nat.mul cof q) Nat.one in
        if Nat.bit_length p = bits_p && Prime.is_probably_prime ~bytes_source p
        then p, cof
        else draw ()
      in
      draw ()
  in
  build ~p ~q ~cofactor ~g_of_curve:(fun curve fp ->
      find_generator curve cofactor ~bytes_source fp)

let of_hex ~p ~q ~cofactor ~gx ~gy =
  let p = Nat.of_hex p and q = Nat.of_hex q and cofactor = Nat.of_hex cofactor in
  let gx = Nat.of_hex gx and gy = Nat.of_hex gy in
  build ~p ~q ~cofactor ~g_of_curve:(fun curve _fp ->
      let g = Curve.Affine (gx, gy) in
      if not (Curve.on_curve curve g) then invalid_arg "Params.of_hex: bad generator";
      g)

(* Embedded presets produced by `dune exec bin/paramgen.exe` with the
   seeds recorded below; see bin/paramgen.ml. *)

let preset ?bits_p ~seed ~bits_q () =
  lazy
    (let drbg = Sc_hash.Drbg.create ~seed in
     generate ?bits_p ~bytes_source:(Sc_hash.Drbg.bytes_source drbg) ~bits_q ())

let toy = preset ~seed:"seccloud-toy-params-v1" ~bits_q:64 ()
let small = preset ~seed:"seccloud-small-params-v1" ~bits_q:112 ()
let mid = preset ~seed:"seccloud-mid-params-v1" ~bits_q:160 ~bits_p:512 ()

let in_subgroup t pt =
  Curve.on_curve t.curve pt
  && (Curve.is_infinity pt || Curve.is_infinity (Curve.mul t.curve t.q pt))

let random_scalar t ~bytes_source =
  let qm1 = Nat.sub t.q Nat.one in
  Nat.add Nat.one (Nat.random_below ~bytes_source qm1)

(* Lazy.force is not domain-safe (concurrent first forcings race);
   serialize only the initial computation — once the lazy is a value,
   forcing it is a read and takes no lock.  [locked] is the shared
   critical-section helper every double-checked path below routes
   through. *)
let precomp_lock = Mutex.create ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let force_precomp t =
  if Lazy.is_val t.g_precomp then Lazy.force t.g_precomp
  else locked precomp_lock (fun () -> Lazy.force t.g_precomp)

let mul_g t k = Curve.mul_precomp t.curve (force_precomp t) (Nat.rem k t.q)

let cache_get cache key compute =
  match SMap.find_opt key (Atomic.get cache.map) with
  | Some v ->
    Telemetry.incr c_precomp_hit;
    v
  | None ->
    locked cache.lock (fun () ->
        (* Re-check under the lock: another domain may have published
           the entry between the lock-free read and the acquisition. *)
        match SMap.find_opt key (Atomic.get cache.map) with
        | Some v ->
          Telemetry.incr c_precomp_hit;
          v
        | None ->
          Telemetry.incr c_precomp_miss;
          let v = compute () in
          Atomic.set cache.map (SMap.add key v (Atomic.get cache.map));
          v)

let precomp_for t pt =
  cache_get t.comb_cache (Curve.to_bytes t.curve pt) (fun () ->
      Curve.precompute t.curve ~bits:(Nat.bit_length t.q) pt)

let miller_precomp_for t pt =
  cache_get t.miller_cache (Curve.to_bytes t.curve pt) (fun () ->
      Miller.precompute ~fp:t.fp ~curve:t.curve ~order:t.q pt)
