(** The modified Tate pairing ê : G1 × G1 → GT.

    Computed as the Miller loop of the Tate pairing e(P, φ(Q)) with
    the distortion map φ(x, y) = (−x, i·y) and denominator
    elimination (vertical lines evaluate into F_p, which the final
    exponentiation (p² − 1)/q = (p − 1)·c annihilates), followed by
    that final exponentiation. *)

open Sc_bignum
open Sc_field
open Sc_ec

type gt = Fp2.el
(** Element of GT, the order-q subgroup of F_p²*. *)

val pairing : Params.t -> Curve.point -> Curve.point -> gt
(** [pairing prm p q] is ê(P, Q); returns {!gt_one} when either
    argument is the point at infinity.  Uses the inversion-free
    projective Miller loop, run entirely in the Montgomery domain
    (inputs are converted once on entry and the result converted back
    after the final exponentiation). *)

val multi_pairing : Params.t -> (Curve.point * Curve.point) list -> gt
(** [multi_pairing prm [(p1, q1); …; (pk, qk)]] is Π ê(P_i, Q_i),
    computed with a single shared Miller squaring chain and one final
    exponentiation — so a k-term product costs far less than k
    separate pairings.  Pairs with an infinity component contribute 1
    and are skipped; the empty product is {!gt_one}.  Counts as one
    evaluation in {!pairings_performed} (zero when every pair is
    skipped). *)

val pairing_affine : Params.t -> Curve.point -> Curve.point -> gt
(** Reference implementation with an affine Miller loop (one field
    inversion per iteration) — slower, used to cross-validate
    {!pairing} and in the ablation benchmarks. *)

type precomp = Miller.precomp
(** Precomputed Miller line tables for a fixed pairing argument. *)

val precompute : Params.t -> Curve.point -> precomp
(** Build the tables for a fixed argument (uncached; see
    {!precomp_for}). *)

val precomp_for : Params.t -> Curve.point -> precomp
(** Cached {!precompute}, via {!Params.miller_precomp_for}. *)

val pairing_precomp : Params.t -> Curve.point -> precomp -> gt
(** [pairing_precomp prm b pc] replays [pc]'s line sequence at [b],
    computing ê(base, b) without any Jacobian arithmetic — several
    times faster than {!pairing}.  For points of the order-q subgroup
    this equals [pairing prm b pc.base] by symmetry; callers passing
    untrusted points must subgroup-check them first, since ê(base, ·)
    annihilates cofactor components that {!pairing} with swapped
    arguments would see.  Counts one pairing evaluation.
    @raise Invalid_argument if the precomp was built for a parameter
    set with a different subgroup order width. *)

val multi_pairing_precomp : Params.t -> (Curve.point * precomp) list -> gt
(** Product Π ê(base_i, b_i) over one shared squaring chain and one
    final exponentiation, like {!multi_pairing}; terms whose point or
    base is infinity contribute 1 and are skipped. *)

val gt_one : gt
val gt_is_one : gt -> bool
val gt_equal : gt -> gt -> bool
val gt_mul : Params.t -> gt -> gt -> gt

val gt_is_unitary : Params.t -> gt -> bool
(** Norm-1 (unitary subgroup) membership — holds for every element
    that went through the final exponentiation.  This is the fast
    path {!gt_inv} tests before falling back to a full inversion. *)

val gt_inv : Params.t -> gt -> gt
(** Total inversion on F_p²*.  Conjugation inverts only {e unitary}
    elements (norm 1) — which every honest GT element is, since the
    final exponentiation maps into the norm-1 subgroup — so the
    implementation takes the cheap conjugation path exactly when the
    norm check passes and falls back to a full field inversion for
    non-unitary inputs (e.g. decoded, possibly mauled wire bytes).
    @raise Division_by_zero on zero. *)

val gt_pow : Params.t -> gt -> Nat.t -> gt

val pairings_performed : unit -> int
(** Process-wide count of pairing evaluations — the evaluation section
    compares schemes by pairing counts, so the library keeps a tally.
    Thin shim over the telemetry registry counter [pairing.count]
    (siblings [pairing.single]/[pairing.multi]/[pairing.multi_terms]/
    [pairing.affine]/[pairing.final_expo] break the total down). *)

val reset_pairing_count : unit -> unit
(** Zeroes [pairing.count] only; the breakdown counters are reset via
    [Telemetry.reset]. *)

val gt_to_bytes : Params.t -> gt -> string
(** Fixed-width [re ‖ im] big-endian encoding. *)

val gt_of_bytes : Params.t -> string -> gt option
