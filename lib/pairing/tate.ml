open Sc_bignum
open Sc_field
open Sc_ec
module Telemetry = Sc_telemetry.Telemetry

(* Registry counters: the evaluation section compares schemes by
   pairing counts, so every Miller-loop entry point keeps a tally.
   [pairing.count] counts pairing *equations* — a multi-pairing runs
   one Miller chain and one final exponentiation, so it counts once
   however many terms it multiplies. *)
let c_pairings = Telemetry.counter "pairing.count"
let c_single = Telemetry.counter "pairing.single"
let c_multi = Telemetry.counter "pairing.multi"
let c_multi_terms = Telemetry.counter "pairing.multi_terms"
let c_affine = Telemetry.counter "pairing.affine"
let c_final_expo = Telemetry.counter "pairing.final_expo"

type gt = Fp2.el

let gt_one = Fp2.one
let gt_is_one = Fp2.is_one
let gt_equal = Fp2.equal
let gt_mul (prm : Params.t) a b = Fp2.mul prm.fp a b

(* Membership in the unitary (norm-1) subgroup of F_p²* — where every
   honest GT element lives after the final exponentiation. *)
let gt_is_unitary (prm : Params.t) a = Fp.equal (Fp2.norm prm.fp a) Fp.one

(* Conjugation inverts only unitary elements — true of every value
   that went through the final exponentiation, but not of arbitrary
   F_p² values (e.g. decoded, possibly mauled wire bytes).  Take the
   cheap conjugation exactly when the subgroup fast path applies and
   fall back to a full inversion, so the function is a total inverse
   either way. *)
let gt_inv (prm : Params.t) a =
  if gt_is_unitary prm a then Fp2.conj prm.fp a else Fp2.inv prm.fp a

let gt_pow (prm : Params.t) a e = Fp2.pow prm.fp a e

(* Evaluate the line through T (slope lam) at the distorted point
   φ(Q) = (−x_q, i·y_q):
     l = i·y_q − y_t − lam·(−x_q − x_t)
       = (lam·(x_q + x_t) − y_t)  +  i·y_q
   Both components stay in F_p. *)
let line_eval fp ~lam ~xt ~yt ~xq ~yq =
  let re = Fp.sub fp (Fp.mul fp lam (Fp.add fp xq xt)) yt in
  Fp2.make re yq

(* Reference implementation: affine Miller loop (one field inversion
   per iteration).  Kept for cross-validation of the projective loop
   below and for the ablation benchmark. *)
let miller_affine (prm : Params.t) px py xq yq =
  let fp = prm.fp in
  let three = Fp.of_int fp 3 in
  let a = Curve.coeff_a prm.curve in
  let f = ref Fp2.one in
  let tx = ref px and ty = ref py in
  let t_inf = ref false in
  let nbits = Nat.bit_length prm.q in
  for i = nbits - 2 downto 0 do
    (* Doubling step. *)
    f := Fp2.sqr fp !f;
    if not !t_inf then begin
      if Fp.is_zero !ty then
        (* Vertical tangent: contributes an F_p factor only. *)
        t_inf := true
      else begin
        let lam =
          Fp.div fp
            (Fp.add fp (Fp.mul fp three (Fp.sqr fp !tx)) a)
            (Fp.double fp !ty)
        in
        f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
        let x3 = Fp.sub fp (Fp.sqr fp lam) (Fp.double fp !tx) in
        let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
        tx := x3;
        ty := y3
      end
    end;
    (* Addition step. *)
    if Nat.test_bit prm.q i && not !t_inf then begin
      if Fp.equal !tx px then begin
        if Fp.equal !ty py then begin
          (* T = P: tangent line. *)
          let lam =
            Fp.div fp
              (Fp.add fp (Fp.mul fp three (Fp.sqr fp !tx)) a)
              (Fp.double fp !ty)
          in
          f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
          let x3 = Fp.sub fp (Fp.sqr fp lam) (Fp.double fp !tx) in
          let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
          tx := x3;
          ty := y3
        end
        else
          (* T = −P: vertical chord, eliminated factor; T becomes O. *)
          t_inf := true
      end
      else begin
        let lam = Fp.div fp (Fp.sub fp !ty py) (Fp.sub fp !tx px) in
        f := Fp2.mul fp !f (line_eval fp ~lam ~xt:!tx ~yt:!ty ~xq ~yq);
        let x3 = Fp.sub fp (Fp.sub fp (Fp.sqr fp lam) !tx) px in
        let y3 = Fp.sub fp (Fp.mul fp lam (Fp.sub fp !tx x3)) !ty in
        tx := x3;
        ty := y3
      end
    end
  done;
  !f

(* --- Montgomery-domain projective Miller machinery ----------------

   The hot path lives entirely on Montgomery-resident elements
   ({!Fp.Mont.e} / {!Fp2.Mont.e}): inputs are converted once on entry,
   every Miller-loop and final-exponentiation multiplication is a
   single fused REDC, and the result is converted back once at the
   end.

   T is tracked in Jacobian coordinates (x = X/Z², y = Y/Z³), and
   every line function is scaled by an F_p* factor (2YZ³ for tangents,
   V·Z for chords) that the final exponentiation annihilates — so the
   whole loop is inversion-free.

   Tangent at T evaluated at φ(Q) = (−x_q, i·y_q), scaled by 2YZ³:
     re = M·(X + x_q·Z²) − 2Y²,   im = 2Y·Z³·y_q,
   with M = 3X² + a·Z⁴.  Chord through T and the affine P, scaled by
   V·Z with U = y_p·Z³ − Y, V = x_p·Z² − X:
     re = U·(x_q + x_p) − V·Z·y_p,   im = V·Z·y_q. *)

module FpM = Fp.Mont
module F2M = Fp2.Mont

(* Per-pair Miller state: fixed affine inputs plus the running
   Jacobian T.  Several states can share one f-squaring chain — that
   is exactly what {!multi_pairing} does. *)
type mstate = {
  px : FpM.e;
  py : FpM.e;
  xq : FpM.e;
  yq : FpM.e;
  mutable tx : FpM.e;
  mutable ty : FpM.e;
  mutable tz : FpM.e;
  mutable inf : bool;
}

let mstate fp px py xq yq =
  let pxm = FpM.enter fp px and pym = FpM.enter fp py in
  {
    px = pxm;
    py = pym;
    xq = FpM.enter fp xq;
    yq = FpM.enter fp yq;
    tx = pxm;
    ty = pym;
    tz = FpM.one fp;
    inf = false;
  }

(* Tangent step: multiply the line at T into f and double T. *)
let dbl_step fp am st f =
  if st.inf then f
  else if FpM.is_zero st.ty then begin
    (* Vertical tangent: contributes an eliminated F_p factor only. *)
    st.inf <- true;
    f
  end
  else begin
    let x = st.tx and y = st.ty and z = st.tz in
    let xx = FpM.sqr fp x in
    let yy = FpM.sqr fp y in
    let zz = FpM.sqr fp z in
    (* M = 3X² + aZ⁴ stays lazy (< 4m): it only ever feeds
       multiplications, which REDC re-canonicalizes. *)
    let m =
      FpM.add_lazy fp
        (FpM.add_lazy fp (FpM.double fp xx) xx)
        (FpM.mul fp am (FpM.sqr fp zz))
    in
    (* Line first (it needs the old X, Y, Z). *)
    let two_yy = FpM.double fp yy in
    let re =
      FpM.sub fp
        (FpM.mul fp m (FpM.add_lazy fp x (FpM.mul fp st.xq zz)))
        two_yy
    in
    let z3 = FpM.double fp (FpM.mul fp y z) in
    let im = FpM.mul fp (FpM.mul fp z3 zz) st.yq in
    let f = F2M.mul fp f (F2M.make re im) in
    (* dbl: S = 4XY², X3 = M² − 2S, Y3 = M(S − X3) − 8Y⁴. *)
    let s = FpM.double fp (FpM.double fp (FpM.mul fp x yy)) in
    let x3 = FpM.sub fp (FpM.sqr fp m) (FpM.double fp s) in
    let y3 =
      FpM.sub fp
        (FpM.mul fp m (FpM.sub fp s x3))
        (FpM.double fp (FpM.double fp (FpM.double fp (FpM.sqr fp yy))))
    in
    st.tx <- x3;
    st.ty <- y3;
    st.tz <- z3;
    f
  end

(* Chord step: multiply the line through T and P into f, T <- T + P. *)
let add_step fp am st f =
  if st.inf then f
  else begin
    let x = st.tx and y = st.ty and z = st.tz in
    let zz = FpM.sqr fp z in
    let u = FpM.sub fp (FpM.mul fp st.py (FpM.mul fp z zz)) y in
    let v = FpM.sub fp (FpM.mul fp st.px zz) x in
    if FpM.is_zero v then begin
      if FpM.is_zero u then
        (* T = P: tangent step (cannot happen for a prime-order Miller
           loop, but stay total). *)
        dbl_step fp am st f
      else begin
        (* Vertical chord: eliminated factor, T becomes O. *)
        st.inf <- true;
        f
      end
    end
    else begin
      let vz = FpM.mul fp v z in
      let re =
        FpM.sub fp
          (FpM.mul fp u (FpM.add_lazy fp st.xq st.px))
          (FpM.mul fp vz st.py)
      in
      let im = FpM.mul fp vz st.yq in
      let f = F2M.mul fp f (F2M.make re im) in
      (* madd: X3 = U² − V³ − 2V²X, Y3 = U(V²X − X3) − V³Y, Z3 = VZ. *)
      let vv = FpM.sqr fp v in
      let vvv = FpM.mul fp vv v in
      let vvx = FpM.mul fp vv x in
      let x3 = FpM.sub fp (FpM.sub fp (FpM.sqr fp u) vvv) (FpM.double fp vvx) in
      let y3 =
        FpM.sub fp (FpM.mul fp u (FpM.sub fp vvx x3)) (FpM.mul fp vvv y)
      in
      st.tx <- x3;
      st.ty <- y3;
      st.tz <- vz;
      f
    end
  end

(* One Miller loop shared by any number of pair states: f is squared
   once per exponent bit regardless of how many pairs ride along, so a
   k-term product pays one squaring chain instead of k. *)
let miller_shared (prm : Params.t) states =
  let fp = prm.fp in
  let am = FpM.enter fp (Curve.coeff_a prm.curve) in
  let f = ref (F2M.one fp) in
  let nbits = Nat.bit_length prm.q in
  for i = nbits - 2 downto 0 do
    f := F2M.sqr fp !f;
    Array.iter (fun st -> f := dbl_step fp am st !f) states;
    if Nat.test_bit prm.q i then
      Array.iter (fun st -> f := add_step fp am st !f) states
  done;
  !f

let miller_projective prm px py xq yq =
  miller_shared prm [| mstate prm.fp px py xq yq |]

(* f^((p² − 1)/q) = (f^(p−1))^c = (conj(f)·f⁻¹)^c, using that
   conjugation is the p-power Frobenius when p ≡ 3 (mod 4).  Kept in
   the standard (Barrett) domain for the affine oracle path. *)
let final_expo (prm : Params.t) f =
  Telemetry.incr c_final_expo;
  let fp = prm.fp in
  let g = Fp2.mul fp (Fp2.conj fp f) (Fp2.inv fp f) in
  Fp2.pow fp g prm.cofactor

(* Same map, Montgomery-resident end to end. *)
let final_expo_mont (prm : Params.t) f =
  Telemetry.incr c_final_expo;
  let fp = prm.fp in
  let g = F2M.mul fp (F2M.conj fp f) (F2M.inv fp f) in
  F2M.pow fp g prm.cofactor

(* Thin shims over the [pairing.count] registry counter, kept so
   existing callers (tests, repro, bench) need no change. *)
let pairings_performed () = Telemetry.value c_pairings
let reset_pairing_count () = Telemetry.reset_counter c_pairings

let pairing prm p q =
  Telemetry.incr c_pairings;
  Telemetry.incr c_single;
  match p, q with
  | Curve.Infinity, _ | _, Curve.Infinity -> gt_one
  | Curve.Affine (px, py), Curve.Affine (qx, qy) ->
    let f = miller_projective prm px py qx qy in
    if F2M.is_zero f then gt_one
    else F2M.leave prm.fp (final_expo_mont prm f)

let multi_pairing (prm : Params.t) pairs =
  let finite =
    List.filter_map
      (function
        | Curve.Infinity, _ | _, Curve.Infinity -> None
        | Curve.Affine (px, py), Curve.Affine (qx, qy) -> Some (px, py, qx, qy))
      pairs
  in
  match finite with
  | [] -> gt_one
  | _ ->
    Telemetry.incr c_pairings;
    Telemetry.incr c_multi;
    Telemetry.add c_multi_terms (List.length finite);
    let states =
      Array.of_list
        (List.map (fun (px, py, qx, qy) -> mstate prm.fp px py qx qy) finite)
    in
    let f = miller_shared prm states in
    if F2M.is_zero f then gt_one
    else F2M.leave prm.fp (final_expo_mont prm f)

(* --- Fixed-base (precomputed) Miller loops ------------------------

   A {!Miller.precomp} replays the line sequence of a fixed base point
   A; evaluating it at a variable point B costs one F_p multiplication
   and one lazy addition per line — no Jacobian arithmetic at all —
   and computes ê(A, B).  By the symmetry of the modified Tate pairing
   on G1 (both sides reduce to ê(G, G)^{ab}) this equals ê(B, A) for
   subgroup points, which is how verification call sites use it: the
   *fixed* argument (generator, system key) carries the precomp, the
   variable argument is only evaluated.  For points outside the
   order-q subgroup the two sides may differ — ê(A, ·) annihilates the
   cofactor component — so callers that accept untrusted points must
   subgroup-check them first (all IBC call sites do). *)

type precomp = Miller.precomp

let precompute (prm : Params.t) pt =
  Miller.precompute ~fp:prm.fp ~curve:prm.curve ~order:prm.q pt

let precomp_for = Params.miller_precomp_for

(* Per-term replay state: the precomp plus the evaluation point in the
   Montgomery domain. *)
type rstate = { entries : Miller.entry array; exq : FpM.e; eyq : FpM.e }

let line_value fp (c : Miller.coeffs) xq yq =
  (* alpha + beta·x_q is lazy (< 2m): it feeds only the F2M
     multiplication below. *)
  F2M.make
    (FpM.add_lazy fp c.Miller.alpha (FpM.mul fp c.Miller.beta xq))
    (FpM.mul fp c.Miller.gamma yq)

let miller_replay_shared (prm : Params.t) states =
  let fp = prm.fp in
  let f = ref (F2M.one fp) in
  let n = max (Nat.bit_length prm.q - 1) 0 in
  for j = 0 to n - 1 do
    f := F2M.sqr fp !f;
    Array.iter
      (fun st ->
        match st.entries.(j).Miller.dbl with
        | Some c -> f := F2M.mul fp !f (line_value fp c st.exq st.eyq)
        | None -> ())
      states;
    (* Chord entries are [Some] exactly on set exponent bits, so the
       bit test of the live loop is implicit here. *)
    Array.iter
      (fun st ->
        match st.entries.(j).Miller.add with
        | Some c -> f := F2M.mul fp !f (line_value fp c st.exq st.eyq)
        | None -> ())
      states
  done;
  !f

let rstate (prm : Params.t) (pc : Miller.precomp) bx by =
  if pc.Miller.nbits <> Nat.bit_length prm.q then
    invalid_arg "Tate.pairing_precomp: precomp from a different parameter set";
  {
    entries = pc.Miller.entries;
    exq = FpM.enter prm.fp bx;
    eyq = FpM.enter prm.fp by;
  }

let pairing_precomp (prm : Params.t) b (pc : precomp) =
  Telemetry.incr c_pairings;
  Telemetry.incr c_single;
  match b, pc.Miller.base with
  | Curve.Infinity, _ | _, Curve.Infinity -> gt_one
  | Curve.Affine (bx, by), _ ->
    let f = miller_replay_shared prm [| rstate prm pc bx by |] in
    if F2M.is_zero f then gt_one else F2M.leave prm.fp (final_expo_mont prm f)

let multi_pairing_precomp (prm : Params.t) terms =
  let finite =
    List.filter_map
      (fun (b, (pc : precomp)) ->
        match b, pc.Miller.base with
        | Curve.Infinity, _ | _, Curve.Infinity -> None
        | Curve.Affine (bx, by), _ -> Some (rstate prm pc bx by))
      terms
  in
  match finite with
  | [] -> gt_one
  | _ ->
    Telemetry.incr c_pairings;
    Telemetry.incr c_multi;
    Telemetry.add c_multi_terms (List.length finite);
    let f = miller_replay_shared prm (Array.of_list finite) in
    if F2M.is_zero f then gt_one else F2M.leave prm.fp (final_expo_mont prm f)

let pairing_affine prm p q =
  Telemetry.incr c_pairings;
  Telemetry.incr c_affine;
  match p, q with
  | Curve.Infinity, _ | _, Curve.Infinity -> gt_one
  | Curve.Affine (px, py), Curve.Affine (qx, qy) ->
    let f = miller_affine prm px py qx qy in
    if Fp2.is_zero f then gt_one else final_expo prm f

let gt_to_bytes (prm : Params.t) (g : gt) =
  let n = (Nat.bit_length prm.p + 7) / 8 in
  Nat.to_bytes_be ~len:n (Fp.to_nat g.Fp2.re) ^ Nat.to_bytes_be ~len:n (Fp.to_nat g.Fp2.im)

let gt_of_bytes (prm : Params.t) s =
  let n = (Nat.bit_length prm.p + 7) / 8 in
  if String.length s <> 2 * n then None
  else begin
    let re = Nat.of_bytes_be (String.sub s 0 n) in
    let im = Nat.of_bytes_be (String.sub s n n) in
    if Nat.compare re prm.p >= 0 || Nat.compare im prm.p >= 0 then None
    else Some (Fp2.make re im)
  end
