(** Fixed-base Miller precomputation.

    Every line the projective Miller loop multiplies into its
    accumulator is affine in the distorted evaluation point
    φ(Q) = (−x_q, i·y_q):

    {v l = (alpha + beta·x_q) + (gamma·y_q)·i v}

    with coefficients depending only on the loop base point's
    trajectory — fixed once the base and the subgroup order are.  For
    a pairing argument that never changes (the generator, the system
    public key, a designated verifier's key) the whole loop can thus
    be replayed from a table of Montgomery-resident coefficients,
    replacing all Jacobian point arithmetic with one multiplication
    and one addition per line; {!Tate.pairing_precomp} is the
    consumer.

    A table holds [bit_length order − 1] entries of up to two lines
    (three field elements each) — about 1.5·|q| stored points' worth
    of memory per cached base. *)

open Sc_bignum
open Sc_field
open Sc_ec

type coeffs = { alpha : Fp.Mont.e; beta : Fp.Mont.e; gamma : Fp.Mont.e }

type entry = { dbl : coeffs option; add : coeffs option }
(** One loop iteration, most-significant bit first: the tangent line,
    plus the chord line on set order bits.  [None] marks an eliminated
    (vertical) factor or a step after the trajectory reached infinity
    — the replay skips it, exactly as the live loop does. *)

type precomp = { base : Curve.point; entries : entry array; nbits : int }

val precompute : fp:Fp.ctx -> curve:Curve.t -> order:Nat.t -> Curve.point -> precomp
(** Walk the Miller trajectory of the given base once and record every
    line.  An infinity base yields all-skip entries (the replayed loop
    evaluates to 1, matching [pairing] with an infinity argument).
    Requires an odd characteristic (the pairing stack guarantees it). *)
