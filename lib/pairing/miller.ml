open Sc_bignum
open Sc_field
open Sc_ec
module FpM = Fp.Mont

(* Every line function the projective Miller loop multiplies into f is
   affine in the distorted evaluation point φ(Q) = (−x_q, i·y_q):

     l = (alpha + beta·x_q) + (gamma·y_q)·i

   and alpha/beta/gamma depend only on the trajectory of the loop's
   base point — which is fixed by the subgroup order's bit pattern.
   So for a fixed base the whole Miller loop can be replayed from a
   table of per-iteration coefficients, replacing all the Jacobian
   point arithmetic with one F_p multiplication and addition per line.

   From the tangent step (T = (X:Y:Z), M = 3X² + a·Z⁴, line scaled by
   2YZ³):   alpha = M·X − 2Y²,  beta = M·Z²,  gamma = 2YZ·Z².
   From the chord step through affine P (U = y_p·Z³ − Y,
   V = x_p·Z² − X, line scaled by V·Z):
            alpha = U·x_p − VZ·y_p,  beta = U,  gamma = V·Z. *)

type coeffs = { alpha : FpM.e; beta : FpM.e; gamma : FpM.e }

(* One loop iteration: the tangent line, plus the chord line when the
   order's bit is set.  [None] marks an eliminated factor (vertical
   line) or a step after T reached infinity — the replay skips it,
   exactly as the live loop skips multiplying. *)
type entry = { dbl : coeffs option; add : coeffs option }

type precomp = { base : Curve.point; entries : entry array; nbits : int }

type traj = {
  mutable tx : FpM.e;
  mutable ty : FpM.e;
  mutable tz : FpM.e;
  mutable inf : bool;
}

(* Tangent at T: record the line coefficients and double T in place.
   Mirrors Tate.dbl_step with the line factored on (x_q, y_q). *)
let tangent fp am st =
  if st.inf then None
  else if FpM.is_zero st.ty then begin
    st.inf <- true;
    None
  end
  else begin
    let x = st.tx and y = st.ty and z = st.tz in
    let xx = FpM.sqr fp x in
    let yy = FpM.sqr fp y in
    let zz = FpM.sqr fp z in
    let m =
      FpM.add fp (FpM.add fp (FpM.double fp xx) xx)
        (FpM.mul fp am (FpM.sqr fp zz))
    in
    let two_yy = FpM.double fp yy in
    let alpha = FpM.sub fp (FpM.mul fp m x) two_yy in
    let beta = FpM.mul fp m zz in
    let z3 = FpM.double fp (FpM.mul fp y z) in
    let gamma = FpM.mul fp z3 zz in
    let s = FpM.double fp (FpM.double fp (FpM.mul fp x yy)) in
    let x3 = FpM.sub fp (FpM.sqr fp m) (FpM.double fp s) in
    let y3 =
      FpM.sub fp
        (FpM.mul fp m (FpM.sub fp s x3))
        (FpM.double fp (FpM.double fp (FpM.double fp (FpM.sqr fp yy))))
    in
    st.tx <- x3;
    st.ty <- y3;
    st.tz <- z3;
    Some { alpha; beta; gamma }
  end

(* Chord through T and the affine base: record the line and set
   T <- T + P.  Mirrors Tate.add_step. *)
let chord fp am st px py =
  if st.inf then None
  else begin
    let x = st.tx and y = st.ty and z = st.tz in
    let zz = FpM.sqr fp z in
    let u = FpM.sub fp (FpM.mul fp py (FpM.mul fp z zz)) y in
    let v = FpM.sub fp (FpM.mul fp px zz) x in
    if FpM.is_zero v then begin
      if FpM.is_zero u then
        (* T = P: tangent step (cannot happen for a prime-order Miller
           loop, but stay total). *)
        tangent fp am st
      else begin
        st.inf <- true;
        None
      end
    end
    else begin
      let vz = FpM.mul fp v z in
      let alpha = FpM.sub fp (FpM.mul fp u px) (FpM.mul fp vz py) in
      let vv = FpM.sqr fp v in
      let vvv = FpM.mul fp vv v in
      let vvx = FpM.mul fp vv x in
      let x3 = FpM.sub fp (FpM.sub fp (FpM.sqr fp u) vvv) (FpM.double fp vvx) in
      let y3 = FpM.sub fp (FpM.mul fp u (FpM.sub fp vvx x3)) (FpM.mul fp vvv y) in
      st.tx <- x3;
      st.ty <- y3;
      st.tz <- vz;
      Some { alpha; beta = u; gamma = vz }
    end
  end

let precompute ~fp ~curve ~order base =
  let nbits = Nat.bit_length order in
  let n = max (nbits - 1) 0 in
  let entries = Array.make n { dbl = None; add = None } in
  (match base with
   | Curve.Infinity -> () (* all entries skip; the replay yields f = 1 *)
   | Curve.Affine (bx, by) ->
     let am = FpM.enter fp (Curve.coeff_a curve) in
     let px = FpM.enter fp bx and py = FpM.enter fp by in
     let st = { tx = px; ty = py; tz = FpM.one fp; inf = false } in
     for j = 0 to n - 1 do
       let i = nbits - 2 - j in
       let dbl = tangent fp am st in
       let add =
         if Nat.test_bit order i then chord fp am st px py else None
       in
       entries.(j) <- { dbl; add }
     done);
  { base; entries; nbits }
