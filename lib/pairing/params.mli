(** Supersingular pairing parameters.

    The curve is E: y² = x³ + x over F_p with p ≡ 3 (mod 4), which is
    supersingular with #E(F_p) = p + 1.  Choosing a prime q dividing
    p + 1 (p = c·q − 1) gives a subgroup G1 of order q, and the
    distortion map φ(x, y) = (−x, i·y) into E(F_p²) makes the modified
    Tate pairing ê(P, Q) = e(P, φ(Q)) a symmetric non-degenerate
    pairing G1 × G1 → GT ⊂ F_p²*. *)

open Sc_bignum
open Sc_field
open Sc_ec

type 'a cache
(** Domain-safe point-keyed precomputation cache: lock-free hits over
    an immutable map, double-check-locked misses. *)

type t = private {
  p : Nat.t; (* field characteristic, ≡ 3 mod 4 *)
  q : Nat.t; (* prime order of G1 and GT *)
  cofactor : Nat.t; (* c = (p + 1) / q *)
  fp : Fp.ctx;
  curve : Curve.t; (* y² = x³ + x over F_p *)
  g : Curve.point; (* generator of G1 *)
  g_precomp : Curve.precomp Lazy.t; (* fixed-base tables for g *)
  comb_cache : Curve.precomp cache; (* fixed-base comb tables by point *)
  miller_cache : Miller.precomp cache; (* Miller line tables by point *)
}

val generate :
  ?bits_p:int -> bytes_source:(int -> string) -> bits_q:int -> unit -> t
(** Fresh parameters: random prime q of [bits_q] bits, a
    multiple-of-4 cofactor c with p = c·q − 1 prime (the smallest one,
    or one sized so that p has [bits_p] bits when given), and a random
    generator. *)

val of_hex : p:string -> q:string -> cofactor:string -> gx:string -> gy:string -> t
(** Rebuilds a parameter set from hex constants, re-validating every
    invariant (primality is trusted for speed; structure is checked).
    @raise Invalid_argument on inconsistent values. *)

val toy : t lazy_t
(** 64-bit q / ~80-bit p: fast, for unit tests only. *)

val small : t lazy_t
(** 112-bit q / ~160-bit p: quick demos. *)

val mid : t lazy_t
(** 160-bit q / 512-bit p — the classic MIRACL-era size the paper's
    Table I was measured with. *)

val in_subgroup : t -> Curve.point -> bool
(** Membership test for G1 (on curve and q·P = O). *)

val random_scalar : t -> bytes_source:(int -> string) -> Nat.t
(** Uniform non-zero scalar in [\[1, q)]. *)

val mul_g : t -> Nat.t -> Curve.point
(** [k·G] via the fixed-base tables — several times faster than
    [Curve.mul] for the generator (the scalar is reduced mod q). *)

val precomp_for : t -> Curve.point -> Curve.precomp
(** Fixed-base comb tables for an arbitrary point (covering scalars
    below q), cached per parameter set and keyed by the point's
    encoding.  Hits are lock-free and counted on
    [pairing.precomp.hit]; misses build under a lock and count on
    [pairing.precomp.miss].  Entries are never invalidated — a point's
    tables are immutable — so memory grows with the number of distinct
    cached points. *)

val miller_precomp_for : t -> Curve.point -> Miller.precomp
(** Miller line tables (see {!Miller.precompute}) for a fixed pairing
    argument, cached like {!precomp_for} and sharing the same
    hit/miss counters. *)
