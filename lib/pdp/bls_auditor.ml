open Sc_bignum
open Sc_ec
module Params = Sc_pairing.Params
module Tate = Sc_pairing.Tate
module Hash_g1 = Sc_pairing.Hash_g1

type keys = { x : Nat.t; pk : Curve.point; u : Curve.point }

type tagged_file = {
  name : string;
  blocks : Nat.t array;
  tags : Curve.point array;
}

type challenge = (int * Nat.t) list
type proof = { mu : Nat.t; sigma : Curve.point }

let generate_keys (prm : Params.t) ~bytes_source =
  let x = Params.random_scalar prm ~bytes_source in
  let pk = Params.mul_g prm x in
  let u = Hash_g1.hash_to_point prm "wang-auditor-u" in
  { x; pk; u }

let block_to_scalar prm block = Hash_g1.hash_to_scalar prm ("blk:" ^ block)

let index_point prm ~name i =
  Hash_g1.hash_to_point prm (Printf.sprintf "wtag:%s:%d" name i)

let tag_file (prm : Params.t) keys ~name raw_blocks =
  let blocks = Array.of_list (List.map (block_to_scalar prm) raw_blocks) in
  let tags =
    Array.mapi
      (fun i m ->
        let base =
          Curve.add prm.curve (index_point prm ~name i)
            (Curve.mul prm.curve m keys.u)
        in
        Curve.mul prm.curve keys.x base)
      blocks
  in
  { name; blocks; tags }

let make_challenge (prm : Params.t) ~bytes_source ~n_blocks ~samples =
  if samples > n_blocks then invalid_arg "Bls_auditor.make_challenge: too many samples";
  (* Sample distinct indices by shuffling a prefix (Fisher–Yates on
     DRBG randomness). *)
  let idx = Array.init n_blocks (fun i -> i) in
  for i = 0 to samples - 1 do
    let j = i + (Nat.to_int_exn (Nat.random ~bytes_source ~bits:30) mod (n_blocks - i)) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  List.init samples (fun i -> idx.(i), Params.random_scalar prm ~bytes_source)

let prove (prm : Params.t) file chal =
  let qmod = Modular.create prm.q in
  let mu =
    List.fold_left
      (fun acc (i, nu) -> Modular.add qmod acc (Modular.mul qmod nu file.blocks.(i)))
      Nat.zero chal
  in
  let sigma =
    List.fold_left
      (fun acc (i, nu) -> Curve.add prm.curve acc (Curve.mul prm.curve nu file.tags.(i)))
      Curve.infinity chal
  in
  { mu; sigma }

let verify (prm : Params.t) keys ~name chal { mu; sigma } =
  (* Subgroup-check the prover-supplied σ: the precomputed pairings
     below rely on symmetry, which only holds on the order-q
     subgroup. *)
  Sc_pairing.Params.in_subgroup prm sigma
  &&
  let h_combined =
    List.fold_left
      (fun acc (i, nu) ->
        Curve.add prm.curve acc (Curve.mul prm.curve nu (index_point prm ~name i)))
      Curve.infinity chal
  in
  let rhs_point = Curve.add prm.curve h_combined (Curve.mul prm.curve mu keys.u) in
  Tate.gt_equal
    (Tate.pairing_precomp prm sigma (Tate.precomp_for prm prm.g))
    (Tate.pairing_precomp prm rhs_point (Tate.precomp_for prm keys.pk))
