(** The prime field F_p.  Elements are canonical {!Sc_bignum.Nat.t}
    residues below the characteristic; a {!ctx} carries the modulus
    and its Barrett reciprocal. *)

open Sc_bignum

type ctx

type el = Nat.t
(** Always a canonical residue in [\[0, p)]. *)

val create : Nat.t -> ctx
(** @raise Invalid_argument if the modulus is < 2.  Primality is the
    caller's responsibility (checked by parameter generation). *)

val characteristic : ctx -> Nat.t

val zero : el
val one : el

val of_nat : ctx -> Nat.t -> el
(** Reduces modulo p. *)

val of_int : ctx -> int -> el
(** Accepts negative integers (reduced into the canonical range). *)

val to_nat : el -> Nat.t

val equal : el -> el -> bool
val is_zero : el -> bool

val add : ctx -> el -> el -> el
val sub : ctx -> el -> el -> el
val neg : ctx -> el -> el
val mul : ctx -> el -> el -> el
val sqr : ctx -> el -> el
val double : ctx -> el -> el

val inv : ctx -> el -> el
(** @raise Division_by_zero on zero. *)

val div : ctx -> el -> el -> el

val batch_inv : ctx -> el array -> el array
(** Montgomery's trick: inverts every element with a single {!inv}
    and 3(n-1) multiplications.
    @raise Division_by_zero if any element is zero. *)

val pow : ctx -> el -> Nat.t -> el

val legendre : ctx -> el -> int
(** [-1], [0], or [1]; requires p odd prime. *)

val is_square : ctx -> el -> bool

val sqrt : ctx -> el -> el option
(** Square root for p ≡ 3 (mod 4) via the [(p+1)/4] exponent.
    @raise Invalid_argument when p ≢ 3 (mod 4). *)

val random : ctx -> bytes_source:(int -> string) -> el

val pp : Format.formatter -> el -> unit

(** Montgomery-resident field elements.

    The pairing hot path converts its inputs into the Montgomery
    domain once ({!Mont.enter}), runs the whole Miller loop and final
    exponentiation on {!Mont.e} values — where a multiplication is one
    fused REDC instead of a {!Sc_bignum.Nat.mul} plus a Barrett
    reduction — and converts back once at the end ({!Mont.leave}).
    Only odd characteristics have a Montgomery form; every operation
    raises [Invalid_argument] on a characteristic-2 context. *)
module Mont : sig
  type e

  val enter : ctx -> el -> e
  val leave : ctx -> e -> el

  val zero : ctx -> e
  val one : ctx -> e

  val of_int : ctx -> int -> e
  (** Accepts negative integers, like {!of_int}. *)

  val add : ctx -> e -> e -> e
  val sub : ctx -> e -> e -> e

  val add_lazy : ctx -> e -> e -> e
  val sub_lazy : ctx -> e -> e -> e
  (** Redundant-representation add/sub (see
      {!Sc_bignum.Montgomery.add_lazy}): results may be non-canonical
      and must only feed {!mul}/{!sqr}, never
      {!equal}/{!is_zero}/{!leave}. *)

  val neg : ctx -> e -> e
  val double : ctx -> e -> e
  val mul : ctx -> e -> e -> e
  val sqr : ctx -> e -> e

  val inv : ctx -> e -> e
  (** @raise Division_by_zero on zero. *)

  val batch_inv : ctx -> e array -> e array
  (** @raise Division_by_zero if any element is zero. *)

  val is_zero : e -> bool
  val equal : e -> e -> bool
end
