open Sc_bignum

type ctx = {
  modular : Modular.ctx;
  mont : Montgomery.ctx option; (* None for even characteristic *)
  p : Nat.t;
  sqrt_exp : Nat.t option; (* (p+1)/4 when p ≡ 3 (mod 4) *)
}

type el = Nat.t

let create p =
  let modular = Modular.create p in
  let mont = if Nat.is_even p then None else Some (Montgomery.create p) in
  let sqrt_exp =
    if Nat.rem_int p 4 = 3
    then Some (Nat.shift_right (Nat.add p Nat.one) 2)
    else None
  in
  { modular; mont; p; sqrt_exp }

let characteristic ctx = ctx.p
let zero = Nat.zero
let one = Nat.one
let of_nat ctx n = Modular.reduce ctx.modular n

let of_int ctx n =
  if n >= 0 then of_nat ctx (Nat.of_int n)
  else Modular.neg ctx.modular (of_nat ctx (Nat.of_int (-n)))

let to_nat e = e
let equal = Nat.equal
let is_zero = Nat.is_zero
let add ctx = Modular.add ctx.modular
let sub ctx = Modular.sub ctx.modular
let neg ctx = Modular.neg ctx.modular
let mul ctx = Modular.mul ctx.modular
let sqr ctx = Modular.sqr ctx.modular
let double ctx a = add ctx a a

let inv ctx a =
  match Modular.inv ctx.modular a with
  | exception Not_found -> raise Division_by_zero
  | r -> r

let div ctx a b = mul ctx a (inv ctx b)

(* Montgomery's trick over canonical residues: one [inv] plus 3(n-1)
   multiplications instead of n inversions. *)
let batch_inv ctx (xs : el array) =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Array.iter (fun x -> if is_zero x then raise Division_by_zero) xs;
    let prefix = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      prefix.(i) <- mul ctx prefix.(i - 1) xs.(i)
    done;
    let acc = ref (inv ctx prefix.(n - 1)) in
    let out = Array.make n zero in
    for i = n - 1 downto 1 do
      out.(i) <- mul ctx !acc prefix.(i - 1);
      acc := mul ctx !acc xs.(i)
    done;
    out.(0) <- !acc;
    out
  end

(* Exponentiation runs in the Montgomery domain when the
   characteristic is odd (always, for prime fields in practice) —
   roughly twice as fast as the Barrett ladder. *)
let pow ctx b e =
  match ctx.mont with
  | Some mont -> Montgomery.pow mont b e
  | None -> Modular.pow ctx.modular b e

(* The binary Jacobi symbol: for a prime characteristic this is the
   Legendre symbol, at a fraction of the cost of Euler's criterion. *)
let legendre ctx a = if is_zero a then 0 else Modular.jacobi a ctx.p

let is_square ctx a = is_zero a || legendre ctx a = 1

let sqrt ctx a =
  match ctx.sqrt_exp with
  | None -> invalid_arg "Fp.sqrt: characteristic is not 3 mod 4"
  | Some e ->
    if is_zero a then Some zero
    else begin
      let y = pow ctx a e in
      if equal (sqr ctx y) a then Some y else None
    end

let random ctx ~bytes_source = Nat.random_below ~bytes_source ctx.p
let pp = Nat.pp

let mont_exn ctx =
  match ctx.mont with
  | Some m -> m
  | None -> invalid_arg "Fp.Mont: characteristic 2 has no Montgomery form"

module Mont = struct
  type e = Montgomery.mont

  let enter ctx a = Montgomery.to_mont (mont_exn ctx) a
  let leave ctx a = Montgomery.of_mont (mont_exn ctx) a
  let zero ctx = Montgomery.zero (mont_exn ctx)
  let one ctx = Montgomery.one (mont_exn ctx)

  let of_int ctx n =
    let m = mont_exn ctx in
    if n >= 0 then Montgomery.of_int m n
    else Montgomery.neg m (Montgomery.of_int m (-n))

  let add ctx = Montgomery.add (mont_exn ctx)
  let sub ctx = Montgomery.sub (mont_exn ctx)
  let add_lazy ctx = Montgomery.add_lazy (mont_exn ctx)
  let sub_lazy ctx = Montgomery.sub_lazy (mont_exn ctx)
  let neg ctx = Montgomery.neg (mont_exn ctx)
  let double ctx = Montgomery.double (mont_exn ctx)
  let mul ctx = Montgomery.mul (mont_exn ctx)
  let sqr ctx = Montgomery.sqr (mont_exn ctx)
  let is_zero = Montgomery.is_zero
  let equal = Montgomery.equal

  let inv ctx a =
    match Montgomery.inv (mont_exn ctx) a with
    | exception Not_found -> raise Division_by_zero
    | r -> r

  let batch_inv ctx xs =
    match Montgomery.batch_inv (mont_exn ctx) xs with
    | exception Not_found -> raise Division_by_zero
    | r -> r
end
