open Sc_bignum

type el = { re : Fp.el; im : Fp.el }

let check_ctx ctx =
  if Nat.rem_int (Fp.characteristic ctx) 4 <> 3
  then invalid_arg "Fp2: characteristic must be 3 mod 4 for i^2 = -1"

let zero = { re = Fp.zero; im = Fp.zero }
let one = { re = Fp.one; im = Fp.zero }
let make re im = { re; im }
let of_base re = { re; im = Fp.zero }
let equal a b = Fp.equal a.re b.re && Fp.equal a.im b.im
let is_zero a = Fp.is_zero a.re && Fp.is_zero a.im
let is_one a = Fp.equal a.re Fp.one && Fp.is_zero a.im

let add ctx a b = { re = Fp.add ctx a.re b.re; im = Fp.add ctx a.im b.im }
let sub ctx a b = { re = Fp.sub ctx a.re b.re; im = Fp.sub ctx a.im b.im }
let neg ctx a = { re = Fp.neg ctx a.re; im = Fp.neg ctx a.im }

(* (a + bi)(c + di) = (ac − bd) + (ad + bc)i, three base squarings or
   four multiplications; schoolbook is fine at our sizes. *)
let mul ctx a b =
  let ac = Fp.mul ctx a.re b.re and bd = Fp.mul ctx a.im b.im in
  let ad = Fp.mul ctx a.re b.im and bc = Fp.mul ctx a.im b.re in
  { re = Fp.sub ctx ac bd; im = Fp.add ctx ad bc }

(* (a + bi)² = (a−b)(a+b) + 2ab·i *)
let sqr ctx a =
  let re = Fp.mul ctx (Fp.sub ctx a.re a.im) (Fp.add ctx a.re a.im) in
  let im = Fp.double ctx (Fp.mul ctx a.re a.im) in
  { re; im }

let conj ctx a = { a with im = Fp.neg ctx a.im }
let norm ctx a = Fp.add ctx (Fp.sqr ctx a.re) (Fp.sqr ctx a.im)

let inv ctx a =
  let n = norm ctx a in
  if Fp.is_zero n then raise Division_by_zero;
  let ninv = Fp.inv ctx n in
  { re = Fp.mul ctx a.re ninv; im = Fp.neg ctx (Fp.mul ctx a.im ninv) }

let div ctx a b = mul ctx a (inv ctx b)

let pow ctx b e =
  let nbits = Nat.bit_length e in
  let rec go acc i =
    if i < 0 then acc
    else begin
      let acc = sqr ctx acc in
      let acc = if Nat.test_bit e i then mul ctx acc b else acc in
      go acc (i - 1)
    end
  in
  if nbits = 0 then one else go one (nbits - 1)

let pp fmt a = Format.fprintf fmt "(%a + %a*i)" Fp.pp a.re Fp.pp a.im

(* Montgomery-resident mirror of the arithmetic above, componentwise
   over Fp.Mont — the pairing layer runs its whole hot path here. *)
module Mont = struct
  module M = Fp.Mont

  type e = { re : M.e; im : M.e }

  let enter ctx (a : el) = { re = M.enter ctx a.re; im = M.enter ctx a.im }

  let leave ctx a : el = { re = M.leave ctx a.re; im = M.leave ctx a.im }
  let make re im = { re; im }
  let zero ctx = { re = M.zero ctx; im = M.zero ctx }
  let one ctx = { re = M.one ctx; im = M.zero ctx }
  let is_zero a = M.is_zero a.re && M.is_zero a.im
  let equal a b = M.equal a.re b.re && M.equal a.im b.im
  let add ctx a b = { re = M.add ctx a.re b.re; im = M.add ctx a.im b.im }
  let sub ctx a b = { re = M.sub ctx a.re b.re; im = M.sub ctx a.im b.im }
  let neg ctx a = { re = M.neg ctx a.re; im = M.neg ctx a.im }

  (* Karatsuba over i² = -1: three base multiplications instead of
     four.  The two operand sums are lazy (< 2m each), which REDC
     absorbs; every multiplication output is canonical again, so the
     trailing subtractions stay strict. *)
  let mul ctx a b =
    let ac = M.mul ctx a.re b.re and bd = M.mul ctx a.im b.im in
    let t = M.mul ctx (M.add_lazy ctx a.re a.im) (M.add_lazy ctx b.re b.im) in
    { re = M.sub ctx ac bd; im = M.sub ctx (M.sub ctx t ac) bd }

  let sqr ctx a =
    let re = M.mul ctx (M.sub ctx a.re a.im) (M.add_lazy ctx a.re a.im) in
    let im = M.double ctx (M.mul ctx a.re a.im) in
    { re; im }

  let conj ctx a = { a with im = M.neg ctx a.im }
  let norm ctx a = M.add ctx (M.sqr ctx a.re) (M.sqr ctx a.im)

  let inv ctx a =
    let n = norm ctx a in
    if M.is_zero n then raise Division_by_zero;
    let ninv = M.inv ctx n in
    { re = M.mul ctx a.re ninv; im = M.neg ctx (M.mul ctx a.im ninv) }

  let pow ctx b e =
    let nbits = Nat.bit_length e in
    let rec go acc i =
      if i < 0 then acc
      else begin
        let acc = sqr ctx acc in
        let acc = if Nat.test_bit e i then mul ctx acc b else acc in
        go acc (i - 1)
      end
    in
    if nbits = 0 then one ctx else go (one ctx) (nbits - 1)
end
