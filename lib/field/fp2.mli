(** The quadratic extension F_p² = F_p(i) with i² = −1, irreducible
    whenever p ≡ 3 (mod 4) — the case of every supersingular pairing
    parameter set in this repository.  Elements are pairs of F_p
    residues manipulated relative to an {!Fp.ctx}. *)

open Sc_bignum

type el = { re : Fp.el; im : Fp.el }

val check_ctx : Fp.ctx -> unit
(** @raise Invalid_argument unless the characteristic is ≡ 3 (mod 4). *)

val zero : el
val one : el

val make : Fp.el -> Fp.el -> el
val of_base : Fp.el -> el

val equal : el -> el -> bool
val is_zero : el -> bool
val is_one : el -> bool

val add : Fp.ctx -> el -> el -> el
val sub : Fp.ctx -> el -> el -> el
val neg : Fp.ctx -> el -> el
val mul : Fp.ctx -> el -> el -> el
val sqr : Fp.ctx -> el -> el

val conj : Fp.ctx -> el -> el
(** Complex conjugation, which is also the p-power Frobenius when
    p ≡ 3 (mod 4). *)

val norm : Fp.ctx -> el -> Fp.el
(** [re² + im²] — the norm map to F_p. *)

val inv : Fp.ctx -> el -> el
(** @raise Division_by_zero on zero. *)

val div : Fp.ctx -> el -> el -> el
val pow : Fp.ctx -> el -> Nat.t -> el

val pp : Format.formatter -> el -> unit

(** F_p² arithmetic over Montgomery-resident components
    ({!Fp.Mont.e}) — the representation the pairing hot path lives
    in.  Semantics mirror the top-level functions exactly. *)
module Mont : sig
  type e = { re : Fp.Mont.e; im : Fp.Mont.e }

  val enter : Fp.ctx -> el -> e
  val leave : Fp.ctx -> e -> el

  val make : Fp.Mont.e -> Fp.Mont.e -> e
  val zero : Fp.ctx -> e
  val one : Fp.ctx -> e
  val is_zero : e -> bool
  val equal : e -> e -> bool

  val add : Fp.ctx -> e -> e -> e
  val sub : Fp.ctx -> e -> e -> e
  val neg : Fp.ctx -> e -> e
  val mul : Fp.ctx -> e -> e -> e
  val sqr : Fp.ctx -> e -> e
  val conj : Fp.ctx -> e -> e
  val norm : Fp.ctx -> e -> Fp.Mont.e

  val inv : Fp.ctx -> e -> e
  (** @raise Division_by_zero on zero. *)

  val pow : Fp.ctx -> e -> Nat.t -> e
end
