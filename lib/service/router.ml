(* Identity -> shard placement.  A domain-separation tag keeps this
   hash from colliding with any signing/KDF use of the identity, and
   the canonical framing makes the digest input injective in the
   identity. *)

let shard_of ~shards id =
  if shards < 1 then invalid_arg "Router.shard_of: shards < 1";
  if shards = 1 then 0
  else begin
    let digest = Sc_hash.Encode.digest [ "seccloud.service.shard"; id ] in
    (* First 8 bytes, big-endian, sign bit cleared: an unbiased-enough
       63-bit sample (shards is tiny next to 2^63). *)
    let acc = ref 0 in
    for i = 0 to 7 do
      acc := (!acc lsl 8) lor Char.code digest.[i]
    done;
    let v = !acc land max_int in
    v mod shards
  end
