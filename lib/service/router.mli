(** Deterministic shard router: identities hash onto a fixed shard
    set.

    The shard of an identity is a pure function of the identity
    string and the shard count — independent of registration order,
    domain count, and every other identity — so any two nodes (or two
    runs) agree on placement without coordination.

    Balance: the router divides the first 8 bytes of a domain-tagged
    SHA-256 of the identity modulo [shards].  For s shards and n
    independent identities each shard load is Binomial(n, 1/s);
    whenever the expected load n/s is at least 1000, every shard is
    within 20% of the mean except with probability < 1e-9 (a > 6
    sigma deviation) — the bound the property suite enforces. *)

val shard_of : shards:int -> string -> int
(** [shard_of ~shards id] is the shard index in [\[0, shards)].
    @raise Invalid_argument if [shards < 1]. *)
