(** The sharded multi-tenant service layer: a long-running front end
    over the SecCloud stack.

    Identities hash onto a fixed shard set ({!Router.shard_of});
    every shard owns its slice of state — registered tenants, their
    stored files and audit warrants, a cloud server, a wire endpoint
    behind a fault-injectable transport, and a designated-agency
    endpoint — so shards never share mutable protocol state and can
    be drained concurrently on the {!Sc_parallel} pool.

    Admission is explicit: {!submit} places a request on the owning
    shard's bounded queue and returns a typed {!error} ([Overloaded])
    the moment the queue is at capacity — backpressure is never a
    block and never a silent drop.  {!drain} then processes queued
    requests in quantum rounds: each round runs one pool task per
    non-empty shard, each task pops at most [drain_quantum] requests,
    and a pool barrier separates rounds, so no shard can starve the
    others (fair draining) and queue-depth accounting happens on the
    submitting domain only.

    Determinism: shard placement is a pure hash; per-shard FIFO order
    is submission order; every random draw (challenge sampling,
    transport faults, compute workloads) comes from per-shard seeded
    DRBGs; and each shard folds a summary of every response into a
    rolling SHA-256.  {!digest} combines the per-shard digests in
    shard order, so two runs of the same workload produce the same
    digest at {e any} [SECCLOUD_DOMAINS] — the value-identity gate
    the property suite and the CLI [--identity-check] enforce.
    (Latency histograms are observational and excluded.)

    Telemetry: counters [service.submitted] / [service.accepted] /
    [service.rejected] / [service.processed], gauges
    [service.queue.depth] (total queued, updated on the submitting
    domain at submit time and after each drain round) and
    [service.queue.peak], plus a [service.<op>] span per processed
    request carrying the tenant and shard and adopting the trace
    context captured at submit time, so a request's audit spans join
    the submitter's trace across the queue boundary. *)

type config = {
  shards : int;  (** fixed shard count, >= 1 *)
  queue_capacity : int;  (** per-shard admission cap, >= 1 *)
  drain_quantum : int;
      (** max requests one shard processes per drain round, >= 1 *)
  faults : Seccloud.Transport.faults;
      (** fault model for every shard's wire transport *)
  retry : Seccloud.Transport.Retry.policy;
}

val default_config : config
(** 16 shards, capacity 1024, quantum 64, perfect channel, default
    retry policy. *)

type request =
  | Admit  (** register the tenant (idempotent) *)
  | Lookup  (** light read: is the tenant known, how many files *)
  | Store of { file : string; payloads : string list }
      (** Protocol II over the shard's wire: sign every block, upload,
          retain the warrant for later audits *)
  | Corrupt of { file : string }
      (** fault injection: silently re-store the tenant's upload with
          one flipped payload bit (models storage rot / a cheating
          server) — subsequent audits of this file must fail *)
  | Audit_storage of { file : string; samples : int }
      (** Protocol II audit over the wire, sampled positions *)
  | Compute of { file : string; n_tasks : int; samples : int }
      (** Protocol III + IV over the wire: random service, commitment,
          Algorithm-1 audit *)
  | Mutate of { file : string; ops : int }
      (** authenticated dynamics: a DRBG-driven burst of [ops]
          update / append / tombstone operations against a
          {!Sc_storage.Dynamic} view of the stored file (built lazily
          from the retained upload), every op proof-checked in
          O(log n), the burst one signed root transition, followed by
          a rank-proof audit of the result *)

type denial = Unknown_tenant | Unknown_file | Empty_upload

type response =
  | Admitted of { shard : int }
  | Info of { known : bool; files : int }
  | Stored of bool  (** the server's accept flag *)
  | Store_failed of Seccloud.Transport.error
  | Audited of {
      report : Seccloud.Agency.storage_report;
      tampered_in_flight : bool;
          (** the shard transport injected at least one bit flip
              during this round — fault-layer ground truth for blame
              classification *)
    }
  | Computed of {
      verdict : Sc_audit.Protocol.verdict;
      tampered_in_flight : bool;
    }
  | Compute_failed of Seccloud.Transport.error
      (** the compute request itself exhausted its retries *)
  | Corrupted
  | Mutated of {
      applied : int;  (** ops that passed their pre-state proof *)
      blocks : int;  (** block count after the burst *)
      intact : bool;  (** post-burst rank-proof audit verdict *)
      diverged : bool;
          (** some op caught the server's root off the client's *)
    }
  | Denied of denial

type error = Overloaded of { shard : int; depth : int }
    (** the owning shard's queue was at capacity; [depth] is its
        length at rejection time *)

val pp_error : Format.formatter -> error -> unit

(** Aggregated per-service accounting, summed over shards.  The
    backpressure tests check [rejected] against the
    [service.rejected] counter and [queue_peak] against the
    configured capacity. *)
type ledger = {
  submitted : int;
  accepted : int;
  rejected : int;
  processed : int;
  admitted : int;  (** distinct tenants admitted *)
  lookups : int;
  stores : int;
  store_failures : int;
  corruptions : int;
  audits : int;
  audit_alarms : int;  (** audits not intact with a clean channel *)
  computes : int;
  compute_alarms : int;  (** invalid verdicts with a clean channel *)
  mutations : int;  (** Mutate bursts processed *)
  mutation_ops : int;  (** individual dynamic ops applied *)
  mutation_alarms : int;
      (** bursts whose audit failed or that caught a diverging server *)
  channel_blames : int;  (** rounds blamed on the transport *)
  denials : int;
  queue_peak : int;  (** max per-shard queue length ever observed *)
}

type t

val create :
  ?config:config ->
  ?params:Sc_pairing.Params.t lazy_t ->
  seed:string ->
  unit ->
  t
(** Builds a dedicated {!Seccloud.System.t} (servers [svc-0] ..
    [svc-(shards-1)], agency [da]) and one shard per configured
    slot.  All randomness derives from [seed].
    @raise Invalid_argument on a non-positive [shards],
    [queue_capacity] or [drain_quantum]. *)

val config : t -> config
val system : t -> Seccloud.System.t

val shard_of : t -> string -> int
(** The shard that owns this identity. *)

val submit : t -> tenant:string -> request -> (unit, error) result
(** Enqueue on the owning shard; captures the current trace context
    so the eventual [service.<op>] span joins the submitter's trace.
    Must be called from the submitting (main) domain, never
    concurrently with {!drain}. *)

val drain : t -> (string * request * response) list
(** Process every queued request to completion and return
    [(tenant, request, response)] triples in deterministic order:
    shard-major, per-shard FIFO.  Runs quantum rounds on the
    {!Sc_parallel} pool as described above. *)

val pending : t -> int
(** Total requests currently queued across shards. *)

val queue_depth : t -> int -> int
(** Current queue length of one shard.
    @raise Invalid_argument on an out-of-range shard index. *)

val set_faults : t -> Seccloud.Transport.faults -> unit
(** Swap every shard's transport for a fresh one with the given fault
    model (clock carried over, fresh generation-seeded fault DRBG).
    Call only while no drain is running. *)

val digest : t -> string
(** Hex SHA-256 combining the shards' rolling response digests in
    shard order — the cross-domain value-identity witness. *)

val ledger : t -> ledger

val tenant_counts : t -> int array
(** Admitted tenants per shard (the balance report). *)
