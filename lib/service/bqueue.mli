(** A bounded FIFO request queue — the per-shard admission buffer.

    Capacity is a hard cap: {!push} on a full queue refuses (the
    caller translates that into a typed [Overloaded] rejection) and
    never blocks, so backpressure is always visible to the client
    instead of silently absorbed.

    Not internally synchronized.  The service layer upholds the
    discipline documented there: pushes happen on the submitting
    domain while no drain is running, pops happen from the single
    worker that owns the shard during a drain round; the two phases
    are separated by the pool barrier. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [false] when the queue is at capacity (the element is refused). *)

val pop : 'a t -> 'a option
(** Oldest element, FIFO. *)
