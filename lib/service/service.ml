module Telemetry = Sc_telemetry.Telemetry
module Drbg = Sc_hash.Drbg
module Encode = Sc_hash.Encode
module Sha256 = Sc_hash.Sha256
module System = Seccloud.System
module Cloud = Seccloud.Cloud
module User = Seccloud.User
module Agency = Seccloud.Agency
module Endpoint = Seccloud.Endpoint
module Transport = Seccloud.Transport
module Wire = Seccloud.Wire
module Protocol = Sc_audit.Protocol

type config = {
  shards : int;
  queue_capacity : int;
  drain_quantum : int;
  faults : Transport.faults;
  retry : Transport.Retry.policy;
}

let default_config =
  {
    shards = 16;
    queue_capacity = 1024;
    drain_quantum = 64;
    faults = Transport.perfect;
    retry = Transport.Retry.default;
  }

type request =
  | Admit
  | Lookup
  | Store of { file : string; payloads : string list }
  | Corrupt of { file : string }
  | Audit_storage of { file : string; samples : int }
  | Compute of { file : string; n_tasks : int; samples : int }
  | Mutate of { file : string; ops : int }

type denial = Unknown_tenant | Unknown_file | Empty_upload

type response =
  | Admitted of { shard : int }
  | Info of { known : bool; files : int }
  | Stored of bool
  | Store_failed of Transport.error
  | Audited of { report : Agency.storage_report; tampered_in_flight : bool }
  | Computed of { verdict : Protocol.verdict; tampered_in_flight : bool }
  | Compute_failed of Transport.error
  | Corrupted
  | Mutated of { applied : int; blocks : int; intact : bool; diverged : bool }
  | Denied of denial

type error = Overloaded of { shard : int; depth : int }

let pp_error fmt (Overloaded { shard; depth }) =
  Format.fprintf fmt "overloaded(shard=%d,depth=%d)" shard depth

type ledger = {
  submitted : int;
  accepted : int;
  rejected : int;
  processed : int;
  admitted : int;
  lookups : int;
  stores : int;
  store_failures : int;
  corruptions : int;
  audits : int;
  audit_alarms : int;
  computes : int;
  compute_alarms : int;
  mutations : int;
  mutation_ops : int;
  mutation_alarms : int;
  channel_blames : int;
  denials : int;
  queue_peak : int;
}

(* Per-shard mutable counters; only ever touched by the shard's owner
   (the submitting domain for submitted/accepted/rejected/queue_peak,
   the draining worker for the rest), so no synchronization needed. *)
type tally = {
  mutable t_submitted : int;
  mutable t_accepted : int;
  mutable t_rejected : int;
  mutable t_processed : int;
  mutable t_admitted : int;
  mutable t_lookups : int;
  mutable t_stores : int;
  mutable t_store_failures : int;
  mutable t_corruptions : int;
  mutable t_audits : int;
  mutable t_audit_alarms : int;
  mutable t_computes : int;
  mutable t_compute_alarms : int;
  mutable t_mutations : int;
  mutable t_mutation_ops : int;
  mutable t_mutation_alarms : int;
  mutable t_channel_blames : int;
  mutable t_denials : int;
  mutable t_queue_peak : int;
}

let fresh_tally () =
  {
    t_submitted = 0;
    t_accepted = 0;
    t_rejected = 0;
    t_processed = 0;
    t_admitted = 0;
    t_lookups = 0;
    t_stores = 0;
    t_store_failures = 0;
    t_corruptions = 0;
    t_audits = 0;
    t_audit_alarms = 0;
    t_computes = 0;
    t_compute_alarms = 0;
    t_mutations = 0;
    t_mutation_ops = 0;
    t_mutation_alarms = 0;
    t_channel_blames = 0;
    t_denials = 0;
    t_queue_peak = 0;
  }

type tenant = {
  mutable files : (string * int) list;  (* file -> block count *)
  mutable user : User.t option;  (* signing handle, built at first store *)
  mutable warrant : Sc_ibc.Warrant.signed option;
  mutable dyn :
    (string * (Sc_storage.Dynamic.client * Sc_storage.Dynamic.server)) list;
      (* file -> dynamic-storage view, built at first Mutate *)
}

type queued = {
  q_tenant : string;
  q_request : request;
  q_ctx : Telemetry.trace_context option;  (* captured at submit *)
}

type shard = {
  index : int;
  cs_id : string;
  queue : queued Bqueue.t;
  tenants : (string, tenant) Hashtbl.t;
  uploads : (string, Sc_storage.Signer.upload) Hashtbl.t;
      (* keyed by qualified file; retained for [Corrupt] *)
  cloud : Cloud.t;
  server : Endpoint.Server.t;
  da : Endpoint.Da.t;  (* per shard: own challenge DRBG *)
  mutable transport : Transport.t;
  drbg : Drbg.t;  (* shard-local sampling/workload randomness *)
  tally : tally;
  mutable digest : string;  (* rolling response digest *)
  mutable out : (string * request * response) list;  (* reversed *)
}

type t = {
  mutable config : config;
  seed : string;
  system : System.t;
  shards : shard array;
  mutable depth : int;  (* total queued; submitting domain only *)
  mutable generation : int;  (* bumped by set_faults *)
}

let c_submitted = Telemetry.counter "service.submitted"
let c_accepted = Telemetry.counter "service.accepted"
let c_rejected = Telemetry.counter "service.rejected"
let c_processed = Telemetry.counter "service.processed"
let g_depth = Telemetry.gauge "service.queue.depth"
let g_peak = Telemetry.gauge "service.queue.peak"

(* Tenant-qualified storage name: injective in (tenant, file), so two
   tenants storing "report.dat" never collide inside a shard's cloud
   server. *)
let qualify ~tenant ~file = Encode.canonical [ tenant; file ]

let make_transport ~system ~config ~seed ~generation ~index ~cs_id ~handler
    ~now =
  let drbg_seed =
    Encode.canonical
      [ "service-transport"; seed; string_of_int index; string_of_int generation ]
  in
  Transport.create ~faults:config.faults ~policy:config.retry
    ~drbg:(Drbg.create ~seed:drbg_seed) ~now ~peer:cs_id
    ~public:(System.public system) ~handler ()

let create ?(config = default_config) ?params ~seed () =
  if config.shards < 1 then invalid_arg "Service.create: shards < 1";
  if config.queue_capacity < 1 then
    invalid_arg "Service.create: queue_capacity < 1";
  if config.drain_quantum < 1 then
    invalid_arg "Service.create: drain_quantum < 1";
  let cs_ids = List.init config.shards (Printf.sprintf "svc-%d") in
  let system = System.create ?params ~seed ~cs_ids ~da_id:"da" () in
  let make_shard index =
    let cs_id = Printf.sprintf "svc-%d" index in
    let cloud = Cloud.create system ~id:cs_id () in
    let server = Endpoint.Server.create system cloud in
    {
      index;
      cs_id;
      queue = Bqueue.create ~capacity:config.queue_capacity;
      tenants = Hashtbl.create 4096;
      uploads = Hashtbl.create 64;
      cloud;
      server;
      da = Endpoint.Da.create system;
      transport =
        make_transport ~system ~config ~seed ~generation:0 ~index ~cs_id
          ~handler:(Endpoint.Server.handle server) ~now:0.0;
      drbg =
        Drbg.create
          ~seed:(Encode.canonical [ "service-shard"; seed; string_of_int index ]);
      tally = fresh_tally ();
      digest = Encode.digest [ "service-digest"; seed; string_of_int index ];
      out = [];
    }
  in
  {
    config;
    seed;
    system;
    shards = Array.init config.shards make_shard;
    depth = 0;
    generation = 0;
  }

let config t = t.config
let system t = t.system
let shard_of t id = Router.shard_of ~shards:t.config.shards id
let pending t = t.depth

let queue_depth t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Service.queue_depth: shard out of range";
  Bqueue.length t.shards.(i).queue

let set_faults t faults =
  t.generation <- t.generation + 1;
  t.config <- { t.config with faults };
  Array.iter
    (fun sh ->
      sh.transport <-
        make_transport ~system:t.system ~config:t.config ~seed:t.seed
          ~generation:t.generation ~index:sh.index ~cs_id:sh.cs_id
          ~handler:(Endpoint.Server.handle sh.server)
          ~now:(Transport.now sh.transport))
    t.shards

let submit t ~tenant request =
  let sh = t.shards.(shard_of t tenant) in
  Telemetry.incr c_submitted;
  sh.tally.t_submitted <- sh.tally.t_submitted + 1;
  let item =
    {
      q_tenant = tenant;
      q_request = request;
      q_ctx = Telemetry.current_context ();
    }
  in
  if Bqueue.push sh.queue item then begin
    Telemetry.incr c_accepted;
    sh.tally.t_accepted <- sh.tally.t_accepted + 1;
    let depth = Bqueue.length sh.queue in
    if depth > sh.tally.t_queue_peak then begin
      sh.tally.t_queue_peak <- depth;
      if float_of_int depth > Telemetry.gauge_value g_peak then
        Telemetry.set g_peak (float_of_int depth)
    end;
    t.depth <- t.depth + 1;
    Telemetry.set g_depth (float_of_int t.depth);
    Ok ()
  end
  else begin
    Telemetry.incr c_rejected;
    sh.tally.t_rejected <- sh.tally.t_rejected + 1;
    Error (Overloaded { shard = sh.index; depth = Bqueue.length sh.queue })
  end

(* --- per-request processing (runs on the shard's worker) ---------- *)

let absorb sh parts =
  sh.digest <- Sha256.digest_concat (Encode.frame (sh.digest :: parts))

let transport_error_tag = function
  | Transport.Timeout -> "timeout"
  | Transport.Tampered -> "tampered"

let denial_tag = function
  | Unknown_tenant -> "unknown-tenant"
  | Unknown_file -> "unknown-file"
  | Empty_upload -> "empty-upload"

let failure_tag = function
  | Protocol.Warrant_invalid -> "warrant"
  | Protocol.Missing_response i -> Printf.sprintf "missing:%d" i
  | Protocol.Signature_wrong i -> Printf.sprintf "sig:%d" i
  | Protocol.Computing_wrong i -> Printf.sprintf "compute:%d" i
  | Protocol.Root_wrong i -> Printf.sprintf "root:%d" i
  | Protocol.Root_signature_wrong -> "root-sig"
  | Protocol.Transport_timeout peer -> "transport-timeout:" ^ peer
  | Protocol.Transport_tampered peer -> "transport-tampered:" ^ peer

let summarize_request = function
  | Admit | Lookup -> []
  | Store { file; payloads } -> [ file; string_of_int (List.length payloads) ]
  | Corrupt { file } -> [ file ]
  | Audit_storage { file; samples } -> [ file; string_of_int samples ]
  | Compute { file; n_tasks; samples } ->
    [ file; string_of_int n_tasks; string_of_int samples ]
  | Mutate { file; ops } -> [ file; string_of_int ops ]

(* Deterministic response summary folded into the shard digest: every
   field here is schedule-independent, so the combined digest is the
   cross-domain value-identity witness (latency never appears). *)
let summarize tenant response =
  match response with
  | Admitted { shard } -> [ "admit"; tenant; string_of_int shard ]
  | Info { known; files } ->
    [ "lookup"; tenant; string_of_bool known; string_of_int files ]
  | Stored ok -> [ "store"; tenant; string_of_bool ok ]
  | Store_failed e -> [ "store-failed"; tenant; transport_error_tag e ]
  | Audited { report; tampered_in_flight } ->
    [
      "audit";
      tenant;
      string_of_int report.Agency.sampled;
      string_of_int report.Agency.valid_blocks;
      String.concat "," (List.map string_of_int report.Agency.invalid_indices);
      string_of_bool report.Agency.intact;
      (match report.Agency.channel with
      | None -> "clean"
      | Some e -> transport_error_tag e);
      string_of_bool tampered_in_flight;
    ]
  | Computed { verdict; tampered_in_flight } ->
    [
      "compute";
      tenant;
      string_of_bool verdict.Protocol.valid;
      String.concat "," (List.map failure_tag verdict.Protocol.failures);
      string_of_bool tampered_in_flight;
    ]
  | Compute_failed e -> [ "compute-failed"; tenant; transport_error_tag e ]
  | Corrupted -> [ "corrupt"; tenant ]
  | Mutated { applied; blocks; intact; diverged } ->
    [
      "mutate";
      tenant;
      string_of_int applied;
      string_of_int blocks;
      string_of_bool intact;
      string_of_bool diverged;
    ]
  | Denied d -> [ "denied"; tenant; denial_tag d ]

let op_name = function
  | Admit -> "admit"
  | Lookup -> "lookup"
  | Store _ -> "store"
  | Corrupt _ -> "corrupt"
  | Audit_storage _ -> "audit"
  | Compute _ -> "compute"
  | Mutate _ -> "mutate"

let get_user t tenant_id record =
  match record.user with
  | Some u -> u
  | None ->
    let u = User.create t.system ~id:tenant_id in
    record.user <- Some u;
    u

let do_store t sh tenant record ~file ~payloads =
  if payloads = [] then begin
    sh.tally.t_denials <- sh.tally.t_denials + 1;
    Denied Empty_upload
  end
  else begin
    let user = get_user t tenant record in
    let qfile = qualify ~tenant ~file in
    let upload = User.sign_file user ~cs_id:sh.cs_id ~file:qfile payloads in
    match Transport.call sh.transport ~expect:"ack" (Wire.Upload upload) with
    | Error e ->
      sh.tally.t_store_failures <- sh.tally.t_store_failures + 1;
      Store_failed e
    | Ok reply ->
      let ok = match reply with Wire.Ack { ok; _ } -> ok | _ -> false in
      if ok then begin
        record.files <-
          (file, List.length payloads) :: List.remove_assoc file record.files;
        Hashtbl.replace sh.uploads qfile upload;
        if record.warrant = None then
          record.warrant <-
            Some
              (User.delegate_audit user ~now:(Transport.now sh.transport)
                 ~lifetime:1e9 ~scope:"service audit")
      end;
      sh.tally.t_stores <- sh.tally.t_stores + 1;
      Stored ok
  end

(* Storage rot: re-store the retained upload with one payload bit
   flipped, bypassing upload verification the way a lazy or cheating
   server would.  Only this tenant's file is touched, so honest
   co-resident tenants must keep auditing clean (the isolation
   property the soak test checks). *)
let do_corrupt sh tenant ~file =
  let qfile = qualify ~tenant ~file in
  match Hashtbl.find_opt sh.uploads qfile with
  | None ->
    sh.tally.t_denials <- sh.tally.t_denials + 1;
    Denied Unknown_file
  | Some upload ->
    let blocks = Array.copy upload.Sc_storage.Signer.blocks in
    let sb = blocks.(0) in
    let block = sb.Sc_storage.Signer.block in
    let data = Bytes.of_string block.Sc_storage.Block.data in
    Bytes.set data 0 (Char.chr (Char.code (Bytes.get data 0) lxor 1));
    blocks.(0) <-
      {
        sb with
        Sc_storage.Signer.block =
          { block with Sc_storage.Block.data = Bytes.to_string data };
      };
    Cloud.accept_upload_unchecked sh.cloud { upload with blocks };
    sh.tally.t_corruptions <- sh.tally.t_corruptions + 1;
    Corrupted

let do_audit sh tenant record ~file ~samples =
  match List.assoc_opt file record.files with
  | None ->
    sh.tally.t_denials <- sh.tally.t_denials + 1;
    Denied Unknown_file
  | Some blocks ->
    let indices =
      let n = min samples blocks in
      let arr = Array.init blocks Fun.id in
      for i = 0 to n - 1 do
        let j = i + Drbg.uniform_int sh.drbg (blocks - i) in
        let v = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- v
      done;
      Array.to_list (Array.sub arr 0 n)
    in
    let tampers0 = Transport.injected_tampers sh.transport in
    let report =
      Endpoint.Da.audit_storage_over_wire sh.da ~transport:sh.transport
        ~owner:tenant ~file:(qualify ~tenant ~file) ~indices
    in
    sh.tally.t_audits <- sh.tally.t_audits + 1;
    (match report.Agency.channel with
    | Some _ -> sh.tally.t_channel_blames <- sh.tally.t_channel_blames + 1
    | None ->
      if not report.Agency.intact then
        sh.tally.t_audit_alarms <- sh.tally.t_audit_alarms + 1);
    Audited
      {
        report;
        tampered_in_flight = Transport.injected_tampers sh.transport > tampers0;
      }

let do_compute sh tenant record ~file ~n_tasks ~samples =
  match (List.assoc_opt file record.files, record.warrant) with
  | None, _ | _, None ->
    sh.tally.t_denials <- sh.tally.t_denials + 1;
    Denied Unknown_file
  | Some blocks, Some warrant ->
    let service =
      Sc_compute.Task.random_service ~drbg:sh.drbg ~n_positions:blocks ~n_tasks
    in
    let qfile = qualify ~tenant ~file in
    let tampers0 = Transport.injected_tampers sh.transport in
    let finish verdict =
      sh.tally.t_computes <- sh.tally.t_computes + 1;
      if List.exists Protocol.is_transport_failure verdict.Protocol.failures
      then sh.tally.t_channel_blames <- sh.tally.t_channel_blames + 1
      else if not verdict.Protocol.valid then
        sh.tally.t_compute_alarms <- sh.tally.t_compute_alarms + 1;
      Computed
        {
          verdict;
          tampered_in_flight =
            Transport.injected_tampers sh.transport > tampers0;
        }
    in
    (match
       Transport.call sh.transport ~expect:"compute_commitment"
         (Wire.Compute_request { owner = tenant; file = qfile; service })
     with
    | Error e ->
      sh.tally.t_computes <- sh.tally.t_computes + 1;
      sh.tally.t_channel_blames <- sh.tally.t_channel_blames + 1;
      Compute_failed e
    | Ok (Wire.Compute_commitment { commitment; _ }) ->
      finish
        (Endpoint.Da.audit_computation_over_wire sh.da ~transport:sh.transport
           ~owner:tenant ~file:qfile ~commitment ~warrant
           ~now:(Transport.now sh.transport) ~samples)
    | Ok _ ->
      (* The server refused (an error reply that still decoded): an
         invalid verdict, not a channel blame. *)
      finish { Protocol.valid = false; failures = [ Protocol.Warrant_invalid ] })

(* Authenticated dynamics over the tenant's stored file: a burst of
   update/append/tombstone ops against a Storage.Dynamic view (built
   lazily from the retained upload), each op proof-checked, the whole
   burst one root transition, then a DA-style rank-proof audit of the
   result.  Every index draw comes from the shard DRBG, so the op mix
   — and hence the digest — is schedule-independent. *)
module Dynamic = Sc_storage.Dynamic

let dyn_view t sh tenant record ~file ~qfile =
  match List.assoc_opt file record.dyn with
  | Some pair -> Some pair
  | None -> (
    match Hashtbl.find_opt sh.uploads qfile with
    | None -> None
    | Some upload ->
      let payloads =
        Array.to_list
          (Array.map
             (fun sb -> sb.Sc_storage.Signer.block.Sc_storage.Block.data)
             upload.Sc_storage.Signer.blocks)
      in
      let key = System.register_user t.system tenant in
      let pair =
        Dynamic.init (System.public t.system) key
          ~bytes_source:(System.bytes_source t.system)
          ~cs_id:sh.cs_id
          ~da_id:(System.da_id t.system)
          ~file:qfile payloads
      in
      record.dyn <- (file, pair) :: record.dyn;
      Some pair)

let do_mutate t sh tenant record ~file ~ops =
  let qfile = qualify ~tenant ~file in
  match
    if List.mem_assoc file record.files then
      dyn_view t sh tenant record ~file ~qfile
    else None
  with
  | None ->
    sh.tally.t_denials <- sh.tally.t_denials + 1;
    Denied Unknown_file
  | Some (dc, ds) ->
    let applied = ref 0 and diverged = ref false in
    for i = 1 to ops do
      let n = Dynamic.count dc in
      let index = Drbg.uniform_int sh.drbg n in
      let payload =
        Printf.sprintf "mut:%s:%d:%d" file i (Drbg.uniform_int sh.drbg 10_000)
      in
      let result =
        match Drbg.uniform_int sh.drbg 4 with
        | 0 | 1 -> Dynamic.update dc ds ~index payload
        | 2 -> Dynamic.append dc ds payload
        | _ -> Dynamic.delete dc ds ~index
      in
      match result with
      | Ok () -> incr applied
      | Error (Dynamic.Diverged _) -> diverged := true
      | Error _ -> ()
    done;
    (* One signed root statement covers the whole burst; the audit
       checks rank proofs against it. *)
    let stmt =
      Dynamic.publish_root dc ~bytes_source:(System.bytes_source t.system)
    in
    let report =
      Dynamic.audit (System.public t.system)
        ~verifier_key:(System.da_key t.system) ~owner:tenant ~file:qfile
        ~root_statement:stmt ds ~drbg:sh.drbg
        ~samples:(min 8 (Dynamic.count dc))
    in
    sh.tally.t_mutations <- sh.tally.t_mutations + 1;
    sh.tally.t_mutation_ops <- sh.tally.t_mutation_ops + !applied;
    if (not report.Dynamic.intact) || !diverged then
      sh.tally.t_mutation_alarms <- sh.tally.t_mutation_alarms + 1;
    Mutated
      {
        applied = !applied;
        blocks = Dynamic.count dc;
        intact = report.Dynamic.intact;
        diverged = !diverged;
      }

let process t sh { q_tenant = tenant; q_request = request; q_ctx } =
  let response =
    Telemetry.with_context q_ctx @@ fun () ->
    Telemetry.with_span
      ~name:("service." ^ op_name request)
      ~attrs:[ ("tenant", tenant); ("shard", string_of_int sh.index) ]
    @@ fun () ->
    match (request, Hashtbl.find_opt sh.tenants tenant) with
    | Admit, Some _ -> Admitted { shard = sh.index }
    | Admit, None ->
      Hashtbl.replace sh.tenants tenant
        { files = []; user = None; warrant = None; dyn = [] };
      sh.tally.t_admitted <- sh.tally.t_admitted + 1;
      Admitted { shard = sh.index }
    | Lookup, record ->
      sh.tally.t_lookups <- sh.tally.t_lookups + 1;
      (match record with
      | None -> Info { known = false; files = 0 }
      | Some r -> Info { known = true; files = List.length r.files })
    | _, None ->
      sh.tally.t_denials <- sh.tally.t_denials + 1;
      Denied Unknown_tenant
    | Store { file; payloads }, Some record ->
      do_store t sh tenant record ~file ~payloads
    | Corrupt { file }, Some _ -> do_corrupt sh tenant ~file
    | Audit_storage { file; samples }, Some record ->
      do_audit sh tenant record ~file ~samples
    | Compute { file; n_tasks; samples }, Some record ->
      do_compute sh tenant record ~file ~n_tasks ~samples
    | Mutate { file; ops }, Some record ->
      do_mutate t sh tenant record ~file ~ops
  in
  sh.tally.t_processed <- sh.tally.t_processed + 1;
  Telemetry.incr c_processed;
  absorb sh (summarize_request request @ summarize tenant response);
  sh.out <- (tenant, request, response) :: sh.out

let drain_round t sh =
  let quantum = t.config.drain_quantum in
  let rec go n =
    if n < quantum then
      match Bqueue.pop sh.queue with
      | None -> ()
      | Some item ->
        process t sh item;
        go (n + 1)
  in
  go 0

let drain t =
  let rec rounds () =
    let busy =
      Array.to_list t.shards
      |> List.filter (fun sh -> not (Bqueue.is_empty sh.queue))
    in
    match busy with
    | [] -> ()
    | _ ->
      (* One task per busy shard; the pool barrier between rounds is
         what makes draining fair — a deep shard gets one quantum per
         round like everyone else. *)
      Sc_parallel.run_tasks (List.map (fun sh () -> drain_round t sh) busy);
      t.depth <-
        Array.fold_left (fun acc sh -> acc + Bqueue.length sh.queue) 0 t.shards;
      Telemetry.set g_depth (float_of_int t.depth);
      rounds ()
  in
  rounds ();
  Array.to_list t.shards
  |> List.concat_map (fun sh ->
         let r = List.rev sh.out in
         sh.out <- [];
         r)

let digest t =
  Sha256.hex_of_digest
    (Sha256.digest_concat
       (Encode.frame
          (Array.to_list (Array.map (fun sh -> sh.digest) t.shards))))

let ledger t =
  Array.fold_left
    (fun acc sh ->
      let y = sh.tally in
      {
        submitted = acc.submitted + y.t_submitted;
        accepted = acc.accepted + y.t_accepted;
        rejected = acc.rejected + y.t_rejected;
        processed = acc.processed + y.t_processed;
        admitted = acc.admitted + y.t_admitted;
        lookups = acc.lookups + y.t_lookups;
        stores = acc.stores + y.t_stores;
        store_failures = acc.store_failures + y.t_store_failures;
        corruptions = acc.corruptions + y.t_corruptions;
        audits = acc.audits + y.t_audits;
        audit_alarms = acc.audit_alarms + y.t_audit_alarms;
        computes = acc.computes + y.t_computes;
        compute_alarms = acc.compute_alarms + y.t_compute_alarms;
        mutations = acc.mutations + y.t_mutations;
        mutation_ops = acc.mutation_ops + y.t_mutation_ops;
        mutation_alarms = acc.mutation_alarms + y.t_mutation_alarms;
        channel_blames = acc.channel_blames + y.t_channel_blames;
        denials = acc.denials + y.t_denials;
        queue_peak = max acc.queue_peak y.t_queue_peak;
      })
    {
      submitted = 0;
      accepted = 0;
      rejected = 0;
      processed = 0;
      admitted = 0;
      lookups = 0;
      stores = 0;
      store_failures = 0;
      corruptions = 0;
      audits = 0;
      audit_alarms = 0;
      computes = 0;
      compute_alarms = 0;
      mutations = 0;
      mutation_ops = 0;
      mutation_alarms = 0;
      channel_blames = 0;
      denials = 0;
      queue_peak = 0;
    }
    t.shards

let tenant_counts t = Array.map (fun sh -> sh.tally.t_admitted) t.shards
