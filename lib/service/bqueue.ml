type 'a t = { q : 'a Queue.t; capacity : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  { q = Queue.create (); capacity }

let capacity t = t.capacity
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

let push t x =
  if Queue.length t.q >= t.capacity then false
  else begin
    Queue.push x t.q;
    true
  end

let pop t = Queue.take_opt t.q
