(* The tree is stored as levels of hash arrays: levels.(0) are leaf
   hashes, the last level is the singleton root.  An odd node at the
   end of a level is promoted to the next level unchanged. *)

type t = { levels : string array array }
type side = L | R
type proof = { leaf_index : int; path : (side * string) list }

module Telemetry = Sc_telemetry.Telemetry

let c_builds = Telemetry.counter "merkle.builds"
let c_leaves = Telemetry.counter "merkle.leaves_built"
let c_proofs = Telemetry.counter "merkle.proofs_issued"
let c_proof_checks = Telemetry.counter "merkle.proof_checks"

let leaf_hash payload = Sc_hash.Sha256.digest_concat [ "leaf:"; payload ]
let node_hash left right = Sc_hash.Sha256.digest_concat [ "node:"; left; right ]

(* Each level's parents only read the (frozen) level below, so level
   construction fans out over the domain pool in disjoint index
   ranges; small levels stay inline under the chunk floor.  The
   resulting hashes are identical at any domain count. *)
let level_min_chunk = 256

let build_levels leaf_hashes =
  let rec up acc level =
    if Array.length level <= 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent = Array.make ((n + 1) / 2) "" in
      Sc_parallel.iter_ranges ~min_chunk:level_min_chunk (n / 2)
        (fun lo hi ->
          for i = lo to hi - 1 do
            parent.(i) <- node_hash level.(2 * i) level.((2 * i) + 1)
          done);
      if n land 1 = 1 then parent.((n - 1) / 2) <- level.(n - 1);
      up (level :: acc) parent
    end
  in
  Array.of_list (up [] leaf_hashes)

let build_of_hashes hashes =
  if hashes = [] then invalid_arg "Merkle.build: empty leaf list";
  Telemetry.incr c_builds;
  Telemetry.add c_leaves (List.length hashes);
  Telemetry.with_span ~name:"merkle.build"
    ~attrs:[ "leaves", string_of_int (List.length hashes) ]
    (fun () -> { levels = build_levels (Array.of_list hashes) })

let build payloads =
  build_of_hashes
    (Sc_parallel.parallel_map ~min_chunk:level_min_chunk leaf_hash payloads)
let root t = t.levels.(Array.length t.levels - 1).(0)
let size t = Array.length t.levels.(0)
let depth t = Array.length t.levels - 1

let leaf t i =
  if i < 0 || i >= size t then invalid_arg "Merkle.leaf: index out of bounds";
  t.levels.(0).(i)

let proof t i =
  if i < 0 || i >= size t then invalid_arg "Merkle.proof: index out of bounds";
  Telemetry.incr c_proofs;
  let rec collect level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let n = Array.length nodes in
      let sibling =
        if idx land 1 = 0 then if idx + 1 < n then Some (R, nodes.(idx + 1)) else None
        else Some (L, nodes.(idx - 1))
      in
      let acc = match sibling with Some s -> s :: acc | None -> acc in
      collect (level + 1) (idx / 2) acc
    end
  in
  { leaf_index = i; path = collect 0 i [] }

let fold_path ~leaf_hash:h path =
  List.fold_left
    (fun acc (side, sib) ->
      match side with L -> node_hash sib acc | R -> node_hash acc sib)
    h path

let root_from_proof ~leaf_hash p = fold_path ~leaf_hash p.path

let verify_proof_hash ~root ~leaf_hash p =
  Telemetry.incr c_proof_checks;
  String.equal root (fold_path ~leaf_hash p.path)

let verify_proof ~root ~leaf_payload p =
  verify_proof_hash ~root ~leaf_hash:(leaf_hash leaf_payload) p

let update_leaf t i payload =
  if i < 0 || i >= size t then invalid_arg "Merkle.update_leaf: index out of bounds";
  let leaves = Array.copy t.levels.(0) in
  leaves.(i) <- leaf_hash payload;
  { levels = build_levels leaves }

let equal_root a b = String.equal (root a) (root b)
