(** Merkle hash trees (eq. 6 and Figure 3 of the paper).

    Leaves are SHA-256 hashes of caller-supplied payloads; internal
    nodes are Ω(V) = H(Ω(left) ‖ Ω(right)).  Odd nodes at any level
    are promoted unchanged (no duplication), so a single-leaf tree has
    root = leaf hash.  Proofs carry the sibling hashes from a leaf to
    the root — exactly the "sibling sets" the cloud server returns in
    the Audit Response step. *)

type t

type side = L | R

type proof = { leaf_index : int; path : (side * string) list }
(** [path] lists, bottom-up, on which side each sibling hash sits. *)

val leaf_hash : string -> string
(** Domain-separated hash of a leaf payload. *)

val node_hash : string -> string -> string
(** Domain-separated interior-node hash, Ω(V) = H("node:" ‖ l ‖ r).
    Exposed so {!Dynamic_tree} produces bit-identical roots. *)

val build : string list -> t
(** Builds from leaf *payloads* (hashed internally).
    @raise Invalid_argument on the empty list. *)

val build_of_hashes : string list -> t
(** Builds from precomputed leaf hashes. *)

val root : t -> string
val size : t -> int
(** Number of leaves. *)

val depth : t -> int

val proof : t -> int -> proof
(** Authentication path for the given leaf.
    @raise Invalid_argument when out of bounds. *)

val verify_proof : root:string -> leaf_payload:string -> proof -> bool

val root_from_proof : leaf_hash:string -> proof -> string
(** The root an authentication path yields for the given leaf hash —
    the primitive behind O(log n) dynamic updates: fold the *new*
    leaf through the *old* path to learn the new root. *)

val verify_proof_hash : root:string -> leaf_hash:string -> proof -> bool
(** Variant when the caller already holds the leaf hash. *)

val leaf : t -> int -> string
(** Stored hash of leaf [i]. *)

val update_leaf : t -> int -> string -> t
(** Functional update: new tree with leaf [i] replaced by a new
    payload. *)

val equal_root : t -> t -> bool
