(* Persistent, path-copying, rank-annotated Merkle tree.

   The array-of-levels {!Tree} is ideal for build-once workloads but
   every mutation rebuilds all levels.  This module keeps the *same
   canonical shape* as [Tree.build] — interior node = (perfect left
   subtree of [split n] leaves, rest) where [split n] is the largest
   power of two strictly below [n]; a trailing odd node promotes
   unchanged — as an immutable pointer tree, so

   - [modify] / [append] copy one root-to-leaf path: O(log n) hashes,
     everything else is shared between versions;
   - [insert] / [delete] at position [i] share every node left of [i]
     and rebuild only the suffix whose pairing shifts (O(log n) at the
     tail, O(n - i) hashes in the middle — re-pairing a shifted suffix
     is a lower bound for any shape-canonical Merkle tree);
   - every reachable root is bit-identical to [Tree.build] over the
     same leaf sequence, so dynamic and rebuild-from-scratch verifiers
     interoperate (the qcheck suite pins this at 1 and 4 domains).

   Every node carries its leaf count (rank, in the sense of the
   Wang-style public-auditing data-dynamics line), and proofs export
   the sibling ranks: because the shape is a function of the leaf
   count alone, a verifier that knows the *signed* total can recompute
   the expected turn directions and sibling sizes for a claimed index
   and reject any path whose geometry disagrees — position binding
   without trusting the server's ranks. *)

type node =
  | Leaf of string
  | Node of { h : string; n : int; l : node; r : node }

type t = node

module Telemetry = Sc_telemetry.Telemetry

let c_modify = Telemetry.counter "merkle.dynamic.update"
let c_insert = Telemetry.counter "merkle.dynamic.insert"
let c_delete = Telemetry.counter "merkle.dynamic.delete"
let c_append = Telemetry.counter "merkle.dynamic.append"
let c_rank_checks = Telemetry.counter "merkle.dynamic.rank_checks"

let leaf_hash = Tree.leaf_hash
let node_hash = Tree.node_hash
let size = function Leaf _ -> 1 | Node { n; _ } -> n
let hash = function Leaf h -> h | Node { h; _ } -> h
let root = hash

let mk l r =
  Node { h = node_hash (hash l) (hash r); n = size l + size r; l; r }

(* Largest power of two strictly below [n] (n >= 2): the canonical
   left-subtree span, identical to the pairing [Tree.build_levels]
   produces. *)
let split n =
  let rec go p = if p * 2 < n then go (p * 2) else p in
  go 1

let is_pow2 n = n land (n - 1) = 0

let rec build_range arr lo n =
  if n = 1 then Leaf arr.(lo)
  else
    let s = split n in
    mk (build_range arr lo s) (build_range arr (lo + s) (n - s))

let of_leaf_hashes hashes =
  if hashes = [] then invalid_arg "Dynamic_tree.of_leaf_hashes: empty";
  let arr = Array.of_list hashes in
  build_range arr 0 (Array.length arr)

let build payloads = of_leaf_hashes (List.map leaf_hash payloads)

let rec leaf t i =
  match t with
  | Leaf h -> if i = 0 then h else invalid_arg "Dynamic_tree.leaf: out of bounds"
  | Node { l; r; _ } ->
    let sl = size l in
    if i < sl then leaf l i else leaf r (i - sl)

let leaf t i =
  if i < 0 || i >= size t then invalid_arg "Dynamic_tree.leaf: out of bounds";
  leaf t i

let leaf_hashes t =
  let rec go t acc = match t with
    | Leaf h -> h :: acc
    | Node { l; r; _ } -> go l (go r acc)
  in
  go t []

(* --- O(log n) point operations ------------------------------------- *)

let modify t i h =
  if i < 0 || i >= size t then
    invalid_arg "Dynamic_tree.modify: out of bounds";
  Telemetry.incr c_modify;
  let rec go t i =
    match t with
    | Leaf _ -> Leaf h
    | Node { l; r; _ } ->
      let sl = size l in
      if i < sl then mk (go l i) r else mk l (go r (i - sl))
  in
  go t i

(* Canonical append: if [n] is a power of two the whole old tree
   becomes the (perfect) left child; otherwise the left child is
   untouched and the append recurses down the right spine. *)
let append_leaf t h =
  let rec go t =
    match t with
    | Leaf _ -> mk t (Leaf h)
    | Node { n; l; r; _ } -> if is_pow2 n then mk t (Leaf h) else mk l (go r)
  in
  go t

let append t h =
  Telemetry.incr c_append;
  append_leaf t h

(* --- structural insert / delete ------------------------------------ *)

(* Perfect, node-aligned subtrees covering leaves [0, i): the binary
   representation of [i], in decreasing size order.  In a canonical
   tree every left child is perfect, so this is O(log n) pieces found
   in O(log n) time; each piece's offset is a multiple of its size. *)
let prefix_pieces t i =
  let rec go t i off acc =
    if i = 0 then acc
    else
      match t with
      | Leaf _ -> (off, t) :: acc
      | Node { l; r; n; _ } ->
        let sl = size l in
        if i >= n then (off, t) :: acc
        else if i >= sl then go r (i - sl) (off + sl) ((off, l) :: acc)
        else go l i off acc
  in
  List.rev (go t i 0 [])

let suffix_leaf_hashes t i =
  let rec go t i acc =
    match t with
    | Leaf h -> if i = 0 then h :: acc else acc
    | Node { l; r; _ } ->
      let sl = size l in
      if i >= sl then go r (i - sl) acc else go l i (go r 0 acc)
  in
  go t i []

(* Rebuild a canonical tree over [pieces @ tail], reusing any piece
   whose span coincides with a node of the new shape (alignment is
   preserved for the untouched prefix, so in practice every piece is
   reused whole). *)
let rebuild ~pieces ~tail_off ~tail =
  let tail = Array.of_list tail in
  let total = tail_off + Array.length tail in
  let rec leaf_of lo =
    if lo >= tail_off then tail.(lo - tail_off)
    else
      let rec find = function
        | (off, p) :: rest ->
          if lo >= off && lo < off + size p then leaf p (lo - off) else find rest
        | [] -> invalid_arg "Dynamic_tree.rebuild: uncovered leaf"
      in
      find pieces
  and build lo n =
    match
      List.find_opt (fun (off, p) -> off = lo && size p = n) pieces
    with
    | Some (_, p) -> p
    | None ->
      if n = 1 then Leaf (leaf_of lo)
      else
        let s = split n in
        mk (build lo s) (build (lo + s) (n - s))
  in
  if total = 0 then invalid_arg "Dynamic_tree.rebuild: empty"
  else build 0 total

let insert t ~at h =
  let n = size t in
  if at < 0 || at > n then invalid_arg "Dynamic_tree.insert: out of bounds";
  Telemetry.incr c_insert;
  if at = n then append_leaf t h
  else
    rebuild ~pieces:(prefix_pieces t at) ~tail_off:at
      ~tail:(h :: suffix_leaf_hashes t at)

let delete t ~at =
  let n = size t in
  if at < 0 || at >= n then invalid_arg "Dynamic_tree.delete: out of bounds";
  if n = 1 then invalid_arg "Dynamic_tree.delete: last leaf";
  Telemetry.incr c_delete;
  rebuild ~pieces:(prefix_pieces t at) ~tail_off:at
    ~tail:(suffix_leaf_hashes t (at + 1))

(* --- batched root transitions -------------------------------------- *)

type op =
  | Modify of { index : int; leaf : string }
  | Insert of { index : int; leaf : string }
  | Append of { leaf : string }
  | Delete of { index : int }

let apply_op t = function
  | Modify { index; leaf } -> modify t index leaf
  | Insert { index; leaf } -> insert t ~at:index leaf
  | Append { leaf } -> append t leaf
  | Delete { index } -> delete t ~at:index

(* Apply [ops] in order and return the final version: k updates, one
   root transition — the caller signs a single root statement for the
   batch instead of one per mutation. *)
let apply t ops = List.fold_left apply_op t ops

(* --- rank proofs ---------------------------------------------------- *)

type side = L | R

(* Leaf-to-root path; each step names the sibling's side, its rank
   (leaf count) and its hash.  [total] is the tree's leaf count at
   proof time, so the proof claims a position *within a stated
   population* — exactly what a signed root statement also binds. *)
type proof = {
  index : int;
  total : int;
  path : (side * int * string) list;
}

let proof t i =
  if i < 0 || i >= size t then invalid_arg "Dynamic_tree.proof: out of bounds";
  let rec go t i acc =
    match t with
    | Leaf _ -> acc
    | Node { l; r; _ } ->
      let sl = size l in
      if i < sl then go l i ((R, size r, hash r) :: acc)
      else go r (i - sl) ((L, sl, hash l) :: acc)
  in
  { index = i; total = size t; path = go t i [] }

(* Expected geometry of a canonical path for [index] within [total]
   leaves, root-to-leaf: the shape is a function of [total] alone, so
   sides and sibling ranks are pure arithmetic — a server cannot lie
   about a leaf's position without breaking the hash chain. *)
let expected_geometry ~total ~index =
  let rec go n i acc =
    if n = 1 then acc
    else
      let s = split n in
      if i < s then go s i ((R, n - s) :: acc)
      else go (n - s) (i - s) ((L, s) :: acc)
  in
  go total index []

let root_of_proof ~leaf_hash p =
  List.fold_left
    (fun acc (side, _, sib) ->
      match side with L -> node_hash sib acc | R -> node_hash acc sib)
    leaf_hash p.path

let check_geometry p =
  Telemetry.incr c_rank_checks;
  p.total >= 1
  && p.index >= 0
  && p.index < p.total
  &&
  let geom = expected_geometry ~total:p.total ~index:p.index in
  List.length geom = List.length p.path
  && List.for_all2
       (fun (side, rank) (side', rank', _) -> side = side' && rank = rank')
       geom p.path

let verify ~root:expected_root ~leaf_hash p =
  check_geometry p
  && String.equal expected_root (root_of_proof ~leaf_hash p)

let verify_payload ~root ~leaf_payload p =
  verify ~root ~leaf_hash:(leaf_hash leaf_payload) p

let equal_root a b = String.equal (root a) (root b)

(* --- append-only frontier ------------------------------------------- *)

(* The canonical tree over [n] leaves is the right-fold of the perfect
   subtrees named by the binary representation of [n] (decreasing
   sizes).  A client that keeps just those <= log2(n)+1 (size, hash)
   pairs — not the data, not the tree — can append locally and derive
   every root on its own: the O(n) "fetch all leaf hashes and rebuild"
   round-trip the previous Storage.Dynamic.append needed disappears. *)

module Frontier = struct
  (* Decreasing sizes; each a perfect subtree root. *)
  type frontier = (int * string) list

  let of_tree t =
    let rec go t acc =
      match t with
      | Leaf h -> (1, h) :: acc
      | Node { n; h; l; r; _ } ->
        if is_pow2 n then (n, h) :: acc else go l (go r acc)
    in
    go t []

  let total (f : frontier) = List.fold_left (fun acc (n, _) -> acc + n) 0 f

  let root = function
    | [] -> invalid_arg "Frontier.root: empty"
    | f ->
      let rec fold = function
        | [ (_, h) ] -> h
        | (_, h) :: rest -> node_hash h (fold rest)
        | [] -> assert false
      in
      fold f

  (* Binary-counter increment with carries on the right: O(log n)
     hashes worst case, O(1) amortized. *)
  let append (f : frontier) h =
    let rec merge = function
      | (n1, h1) :: (n2, h2) :: rest when n1 = n2 ->
        merge ((n1 + n2, node_hash h2 h1) :: rest)
      | f -> f
    in
    List.rev (merge ((1, h) :: List.rev f))

  (* Fold a rank-proof path into the frontier: replacing the leaf at
     [p.index] with [leaf_hash] updates exactly one frontier piece (the
     binary-representation block containing the index); the first
     log2(block) path steps stay inside it.  O(log n), no server data
     beyond the already-verified proof. *)
  let modify (f : frontier) (p : proof) ~leaf_hash =
    let rec go acc before = function
      | [] -> invalid_arg "Frontier.modify: index out of range"
      | (n, h) :: rest ->
        if p.index < before + n then begin
          let depth =
            let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
            log2 n
          in
          let inner = List.filteri (fun i _ -> i < depth) p.path in
          let h' =
            List.fold_left
              (fun acc (side, _, sib) ->
                match side with
                | L -> node_hash sib acc
                | R -> node_hash acc sib)
              leaf_hash inner
          in
          List.rev_append acc ((n, h') :: rest)
        end
        else go ((n, h) :: acc) (before + n) rest
    in
    go [] 0 f
end
