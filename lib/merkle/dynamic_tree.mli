(** Persistent, path-copying, rank-annotated Merkle tree.

    Same leaf/node hashing and the same canonical shape as {!Tree}
    (left child = largest power of two strictly below the leaf count),
    so every reachable root is bit-identical to [Tree.build] over the
    same leaf sequence — but mutations copy one path instead of
    rebuilding every level:

    - {!modify} and {!append} are O(log n) hashes, all untouched nodes
      shared between versions;
    - {!insert}/{!delete} at position [i] share every node covering
      leaves left of [i] and rebuild the suffix whose pairing shifts:
      O(log n) at the tail, O(n - i) in the middle (a lower bound for
      any shape-canonical Merkle tree, since inserting shifts every
      later pairing);
    - {!proof}s carry sibling ranks, and {!verify} recomputes the
      expected path geometry from the (signed) total and claimed
      index, so position is bound as strongly as content — the data
      dynamics of Wang-style public auditing (arXiv:1405.6263,
      arXiv:1612.08029) on SecCloud's tree;
    - {!apply} folds a batch of ops into one root transition, so a
      client signs one root statement for k updates;
    - {!Frontier} is the O(log n) owner-side digest state that makes
      appends local (no fetch-all-leaf-hashes round trip). *)

type t
(** Immutable; every operation returns a new version sharing structure
    with the old one. *)

type side = L | R

type proof = {
  index : int;  (** claimed leaf position *)
  total : int;  (** leaf count at proof time *)
  path : (side * int * string) list;
      (** bottom-up: sibling side, sibling rank (leaf count), sibling
          hash *)
}

type op =
  | Modify of { index : int; leaf : string }
  | Insert of { index : int; leaf : string }
  | Append of { leaf : string }
  | Delete of { index : int }
(** [leaf] fields are leaf {e hashes} (see {!Tree.leaf_hash}). *)

val leaf_hash : string -> string
(** = {!Tree.leaf_hash}. *)

val build : string list -> t
(** From leaf payloads. @raise Invalid_argument on the empty list. *)

val of_leaf_hashes : string list -> t
(** From precomputed leaf hashes.
    @raise Invalid_argument on the empty list. *)

val root : t -> string
val size : t -> int

val leaf : t -> int -> string
(** Stored hash of leaf [i]. @raise Invalid_argument out of bounds. *)

val leaf_hashes : t -> string list

val modify : t -> int -> string -> t
(** [modify t i h] replaces leaf [i]'s hash: O(log n).
    @raise Invalid_argument out of bounds. *)

val append : t -> string -> t
(** Add a leaf hash at index [size t]: O(log n). *)

val insert : t -> at:int -> string -> t
(** Insert a leaf hash so it lands at index [at] (0 <= at <= size).
    Shares the prefix; rebuilds the shifted suffix. *)

val delete : t -> at:int -> t
(** Structurally remove leaf [at] (later leaves shift down).
    @raise Invalid_argument out of bounds or on a 1-leaf tree. *)

val apply : t -> op list -> t
(** Batched root transition: apply the ops in order, return the final
    version — one signed root statement for k mutations. *)

val proof : t -> int -> proof
(** Rank-annotated authentication path: O(log n).
    @raise Invalid_argument out of bounds. *)

val root_of_proof : leaf_hash:string -> proof -> string
(** Fold a (new) leaf hash through the path: the post-modify root. *)

val check_geometry : proof -> bool
(** Just the positional half of {!verify}: sides and sibling ranks
    equal the canonical decomposition of [index] within [total]. *)

val verify : root:string -> leaf_hash:string -> proof -> bool
(** Checks the path geometry (sides and sibling ranks must equal the
    canonical decomposition of [proof.index] within [proof.total] —
    pure arithmetic, so a lying server cannot relocate a leaf) and the
    hash chain against [root].  The caller is expected to have bound
    [proof.total] to a signed count. *)

val verify_payload : root:string -> leaf_payload:string -> proof -> bool

val expected_geometry : total:int -> index:int -> (side * int) list
(** The bottom-up sibling (side, rank) sequence the canonical shape
    dictates for [index] among [total] leaves; exposed for tests. *)

val equal_root : t -> t -> bool

(** Owner-side append state: the <= log2(n)+1 perfect-subtree roots
    named by the binary representation of the leaf count.  The
    canonical root is their right-fold, so a client holding a frontier
    can append and re-root locally — O(log n) state, zero server
    round-trips. *)
module Frontier : sig
  type frontier = (int * string) list
  (** (rank, hash) pairs, decreasing ranks. *)

  val of_tree : t -> frontier
  val total : frontier -> int

  val root : frontier -> string
  (** @raise Invalid_argument on the empty frontier. *)

  val append : frontier -> string -> frontier
  (** Binary-counter increment: O(1) amortized, O(log n) worst. *)

  val modify : frontier -> proof -> leaf_hash:string -> frontier
  (** Re-root after replacing the proved leaf: folds the in-block
      prefix of the (already verified) path onto the one affected
      frontier block. *)
end
