(** Montgomery multiplication (REDC) for odd moduli.

    Operands are kept in the Montgomery domain (a·R mod m with
    R = B^k, B = 2^26, k the limb count of m), where a modular
    multiplication costs one fused multiply-reduce instead of a
    multiplication plus a Barrett reduction.  Used by
    {!Modular.pow}-style exponentiation ladders; see {!pow} for a
    drop-in entry point. *)

type ctx

val create : Nat.t -> ctx
(** @raise Invalid_argument unless the modulus is odd and ≥ 3. *)

val modulus : ctx -> Nat.t

type mont
(** A residue in the Montgomery domain. *)

val to_mont : ctx -> Nat.t -> mont
(** Reduces its argument modulo m first, so any natural is accepted. *)

val of_mont : ctx -> mont -> Nat.t

val one : ctx -> mont
(** R mod m, the domain image of 1. *)

val zero : ctx -> mont

val of_int : ctx -> int -> mont
(** @raise Invalid_argument on negative arguments (see
    {!Nat.of_int}). *)

val is_zero : mont -> bool

val equal : mont -> mont -> bool
(** Domain representatives are canonical, so this is also equality of
    the represented residues (for operands of the same context). *)

val add : ctx -> mont -> mont -> mont
val sub : ctx -> mont -> mont -> mont
val neg : ctx -> mont -> mont
val double : ctx -> mont -> mont
(** Modular add/sub/neg/double directly on domain representatives —
    the Montgomery map is additive, so no conversion is involved. *)

val add_lazy : ctx -> mont -> mont -> mont
val sub_lazy : ctx -> mont -> mont -> mont
(** Redundant-representation add/sub: when the modulus leaves enough
    limb headroom (16m ≤ B^k) these skip the canonicalising
    conditional subtraction, returning a value that may be as large as
    4m.  Such lazy values must only ever flow into {!mul}/{!sqr}
    (whose REDC output is canonical again) — never into
    {!equal}/{!is_zero}/{!of_mont} — and at most two lazy operations
    may be chained before a multiply.  [sub_lazy] additionally
    requires both operands < 2m.  Without headroom they silently fall
    back to the strict {!add}/{!sub}. *)

val mul : ctx -> mont -> mont -> mont
val sqr : ctx -> mont -> mont

val inv : ctx -> mont -> mont
(** [mul ctx a (inv ctx a) = one ctx].
    @raise Not_found when the argument is not invertible (including
    zero). *)

val batch_inv : ctx -> mont array -> mont array
(** Montgomery's trick: inverts every element with a single {!inv}
    and 3(n-1) multiplications.
    @raise Not_found if any element is zero or not invertible. *)

val pow : ctx -> Nat.t -> Nat.t -> Nat.t
(** [pow ctx b e] = b^e mod m, entirely inside the Montgomery domain.
    Functionally identical to {!Modular.pow} for odd moduli. *)
