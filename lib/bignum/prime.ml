(* Sieve of Eratosthenes: all scratch state is local to the call, so
   the only thing that escapes to the toplevel is the frozen array. *)
let sieve limit =
  let composite = Array.make (limit + 1) false in
  let primes = ref [] in
  for i = 2 to limit do
    if not composite.(i) then begin
      primes := i :: !primes;
      let j = ref (i * i) in
      while !j <= limit do
        composite.(!j) <- true;
        j := !j + i
      done
    end
  done;
  Array.of_list (List.rev !primes)

let small_primes = sieve 10_000

let divisible_by_small_prime n =
  let top = Array.length small_primes - 1 in
  let rec go i =
    if i > top then false
    else begin
      let p = small_primes.(i) in
      if Nat.rem_int n p = 0 then not (Nat.equal n (Nat.of_int p)) else go (i + 1)
    end
  in
  go 0

(* One Miller-Rabin round for witness [a]: n - 1 = d * 2^s with d odd.
   The dominant a^d runs in the Montgomery domain (n is odd here). *)
let mr_round ctx mont n_minus_1 d s a =
  let x = Montgomery.pow mont a d in
  if Nat.is_one x || Nat.equal x n_minus_1 then true
  else begin
    let rec squares x i =
      if i >= s - 1 then false
      else begin
        let x = Modular.sqr ctx x in
        if Nat.equal x n_minus_1 then true else squares x (i + 1)
      end
    in
    squares x 0
  end

let is_probably_prime ?(rounds = 32) ~bytes_source n =
  if Nat.compare n Nat.two < 0 then false
  else if Nat.equal n Nat.two then true
  else if Nat.is_even n then false
  else if divisible_by_small_prime n then false
  else if Nat.compare n (Nat.of_int 10_000 |> Nat.sqr) < 0 then
    (* Below 10^8 trial division by the sieve is a complete test. *)
    true
  else begin
    let ctx = Modular.create n in
    let mont = Montgomery.create n in
    let n_minus_1 = Nat.sub n Nat.one in
    let rec split d s = if Nat.is_even d then split (Nat.shift_right d 1) (s + 1) else d, s in
    let d, s = split n_minus_1 0 in
    let n_minus_3 = Nat.sub n (Nat.of_int 3) in
    let rec rounds_left k =
      if k = 0 then true
      else begin
        let a = Nat.add Nat.two (Nat.random_below ~bytes_source n_minus_3) in
        if mr_round ctx mont n_minus_1 d s a then rounds_left (k - 1) else false
      end
    in
    rounds_left rounds
  end

let next_prime ~bytes_source n =
  let n = if Nat.compare n Nat.two < 0 then Nat.two else n in
  let n = if Nat.is_even n && not (Nat.equal n Nat.two) then Nat.add n Nat.one else n in
  let rec go n =
    if is_probably_prime ~bytes_source n then n else go (Nat.add n Nat.two)
  in
  if Nat.equal n Nat.two then n else go n

let random_prime ~bytes_source ~bits =
  if bits < 2 then invalid_arg "Prime.random_prime: bits < 2";
  let top_bit = Nat.shift_left Nat.one (bits - 1) in
  let rec draw () =
    let r = Nat.random ~bytes_source ~bits:(bits - 1) in
    let candidate =
      let c = Nat.add top_bit r in
      if Nat.is_even c then Nat.add c Nat.one else c
    in
    if Nat.bit_length candidate = bits && is_probably_prime ~bytes_source candidate
    then candidate
    else draw ()
  in
  draw ()
