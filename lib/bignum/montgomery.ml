let limb_bits = Nat.base_bits
let base = 1 lsl limb_bits
let mask = base - 1

type ctx = {
  m : Nat.t;
  m_limbs : int array; (* k limbs, k >= 1 *)
  k : int;
  m' : int; (* -m[0]^-1 mod B *)
  r_mod_m : Nat.t; (* B^k mod m, the domain image of 1 *)
  lazy_ok : bool; (* 16m <= B^k: redundant operands stay inside REDC's bound *)
}

type mont = int array (* exactly k limbs, value < m *)

(* Inverse of an odd limb modulo B by Newton iteration: for odd a,
   a·a ≡ 1 (mod 8), and each step doubles the number of correct
   low bits. *)
let inv_limb a =
  let x = ref a in
  for _ = 1 to 4 do
    (* Mask the inner term before multiplying so the product stays
       below 2^52. *)
    let t = (2 - (a * !x)) land mask in
    x := !x * t land mask
  done;
  !x land mask

let create m =
  if Nat.compare m (Nat.of_int 3) < 0 || Nat.is_even m
  then invalid_arg "Montgomery.create: modulus must be odd and >= 3";
  let m_limbs = Nat.to_limbs m in
  let k = Array.length m_limbs in
  let m' = (base - inv_limb m_limbs.(0)) land mask in
  let r_mod_m = Nat.rem (Nat.shift_left Nat.one (k * limb_bits)) m in
  (* Lazy (redundant) operands are only sound when 16m <= B^k: then a
     sum of two once-lazy values stays < 4m, and a product of two such
     operands is < 16m^2 <= m*B^k, REDC's input bound. *)
  let lazy_ok = Nat.bit_length m + 4 <= k * limb_bits in
  { m; m_limbs; k; m'; r_mod_m; lazy_ok }

let modulus ctx = ctx.m

(* REDC on a scratch buffer of 2k+1 limbs holding T < m·B^k:
   returns T·B^-k mod m as a k-limb array. *)
let redc ctx t =
  let k = ctx.k and m = ctx.m_limbs in
  for i = 0 to k - 1 do
    let u = t.(i) * ctx.m' land mask in
    let carry = ref 0 in
    for j = 0 to k - 1 do
      let x = t.(i + j) + (u * m.(j)) + !carry in
      t.(i + j) <- x land mask;
      carry := x lsr limb_bits
    done;
    let j = ref (i + k) in
    while !carry > 0 do
      let x = t.(!j) + !carry in
      t.(!j) <- x land mask;
      carry := x lsr limb_bits;
      incr j
    done
  done;
  let out = Array.sub t k (k + 1) in
  (* out < 2m, one conditional subtraction suffices. *)
  let ge =
    if out.(k) > 0 then true
    else begin
      let rec cmp i =
        if i < 0 then true
        else if out.(i) <> m.(i) then out.(i) > m.(i)
        else cmp (i - 1)
      in
      cmp (k - 1)
    end
  in
  if ge then begin
    let borrow = ref 0 in
    for i = 0 to k - 1 do
      let d = out.(i) - m.(i) - !borrow in
      if d < 0 then begin
        out.(i) <- d + base;
        borrow := 1
      end
      else begin
        out.(i) <- d;
        borrow := 0
      end
    done
  end;
  Array.sub out 0 k

(* Multiply two k-limb operands into a fresh (2k+1)-limb buffer. *)
let mul_into ctx a b =
  let k = ctx.k in
  let t = Array.make ((2 * k) + 1) 0 in
  for i = 0 to k - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to k - 1 do
        let x = t.(i + j) + (ai * b.(j)) + !carry in
        t.(i + j) <- x land mask;
        carry := x lsr limb_bits
      done;
      t.(i + k) <- t.(i + k) + !carry
    end
  done;
  t

let pad ctx limbs =
  if Array.length limbs = ctx.k then limbs
  else begin
    let out = Array.make ctx.k 0 in
    Array.blit limbs 0 out 0 (Array.length limbs);
    out
  end

let to_mont ctx a =
  let reduced = Nat.rem a ctx.m in
  let shifted = Nat.rem (Nat.shift_left reduced (ctx.k * limb_bits)) ctx.m in
  pad ctx (Nat.to_limbs shifted)

let of_mont ctx (a : mont) =
  let t = Array.make ((2 * ctx.k) + 1) 0 in
  Array.blit a 0 t 0 ctx.k;
  Nat.of_limbs (redc ctx t)

let one ctx = pad ctx (Nat.to_limbs ctx.r_mod_m)
let zero ctx = Array.make ctx.k 0
let of_int ctx n = to_mont ctx (Nat.of_int n)
let mul ctx a b = redc ctx (mul_into ctx a b)
let sqr ctx a = mul ctx a a

let is_zero (a : mont) =
  let rec go i = i < 0 || (a.(i) = 0 && go (i - 1)) in
  go (Array.length a - 1)

(* Values are canonical (< m), so domain equality is limb equality. *)
let equal (a : mont) (b : mont) =
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  Array.length a = Array.length b && go (Array.length a - 1)

(* out >= m, comparing the k-limb arrays from the top. *)
let ge_mod ctx (a : mont) =
  let m = ctx.m_limbs in
  let rec cmp i =
    if i < 0 then true else if a.(i) <> m.(i) then a.(i) > m.(i) else cmp (i - 1)
  in
  cmp (ctx.k - 1)

(* In-place a <- a - m (no borrow out: caller ensures a >= m). *)
let sub_mod_inplace ctx (a : mont) =
  let m = ctx.m_limbs in
  let borrow = ref 0 in
  for i = 0 to ctx.k - 1 do
    let d = a.(i) - m.(i) - !borrow in
    if d < 0 then begin
      a.(i) <- d + base;
      borrow := 1
    end
    else begin
      a.(i) <- d;
      borrow := 0
    end
  done

(* The Montgomery map is additive (aR + bR = (a+b)R), so modular
   add/sub/neg work directly on domain representatives. *)
let add ctx (a : mont) (b : mont) =
  let k = ctx.k in
  let out = Array.make k 0 in
  let carry = ref 0 in
  for i = 0 to k - 1 do
    let x = a.(i) + b.(i) + !carry in
    out.(i) <- x land mask;
    carry := x lsr limb_bits
  done;
  if !carry > 0 || ge_mod ctx out then sub_mod_inplace ctx out;
  out

let sub ctx (a : mont) (b : mont) =
  let k = ctx.k and m = ctx.m_limbs in
  let out = Array.make k 0 in
  let borrow = ref 0 in
  for i = 0 to k - 1 do
    let d = a.(i) - b.(i) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  if !borrow > 0 then begin
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let x = out.(i) + m.(i) + !carry in
      out.(i) <- x land mask;
      carry := x lsr limb_bits
    done
  end;
  out

let neg ctx (a : mont) = if is_zero a then Array.copy a else sub ctx (zero ctx) a
let double ctx (a : mont) = add ctx a a

(* Redundant-representation add: skips the conditional subtraction, so
   the result may reach the sum of the operand bounds.  Sound only
   under [lazy_ok] (16m <= B^k), where a chain of two lazy adds over
   canonical inputs stays < 4m, and a product of two such operands is
   < 16m^2 <= m·B^k — still inside REDC's input bound.  Lazy values
   must only ever flow into [mul]/[sqr] (whose REDC output is again
   canonical), never into [equal]/[is_zero]/[of_mont]. *)
let add_lazy ctx (a : mont) (b : mont) =
  if not ctx.lazy_ok then add ctx a b
  else begin
    let k = ctx.k in
    let out = Array.make k 0 in
    let carry = ref 0 in
    for i = 0 to k - 1 do
      let x = a.(i) + b.(i) + !carry in
      out.(i) <- x land mask;
      carry := x lsr limb_bits
    done;
    (* a + b < 8m <= B^k/2: no carry out of the top limb. *)
    out
  end

(* Lazy subtract as a + 2m - b, valid for operands < 2m; the result is
   < 4m and non-negative without any branch on the borrow. *)
let sub_lazy ctx (a : mont) (b : mont) =
  if not ctx.lazy_ok then sub ctx a b
  else begin
    let k = ctx.k and m = ctx.m_limbs in
    let out = Array.make k 0 in
    let carry = ref 0 in
    for i = 0 to k - 1 do
      (* Offset by B so the limb stays non-negative; the -1 in the
         carry update cancels the offset. *)
      let x = a.(i) + (2 * m.(i)) - b.(i) + !carry + base in
      out.(i) <- x land mask;
      carry := (x lsr limb_bits) - 1
    done;
    out
  end

(* Inversion leaves the domain once: (aR)·B^-k = a, invert with the
   extended Euclid, then re-enter.  mul (aR) ((a^-1)R) = R = one. *)
let inv ctx (a : mont) =
  let v = of_mont ctx a in
  let g, x, _ = Modular.egcd v ctx.m in
  if not (Nat.is_one g) then raise Not_found;
  let xm =
    let r = Nat.rem (Signed.abs x) ctx.m in
    if Signed.sign x < 0 && not (Nat.is_zero r) then Nat.sub ctx.m r else r
  in
  to_mont ctx xm

(* Montgomery's trick: n inversions for one [inv] and 3(n-1) [mul]s.
   Zero elements are rejected up front so the shared prefix product
   cannot silently absorb them. *)
let batch_inv ctx (xs : mont array) =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    Array.iter (fun x -> if is_zero x then raise Not_found) xs;
    let prefix = Array.make n xs.(0) in
    for i = 1 to n - 1 do
      prefix.(i) <- mul ctx prefix.(i - 1) xs.(i)
    done;
    let acc = ref (inv ctx prefix.(n - 1)) in
    let out = Array.make n (zero ctx) in
    for i = n - 1 downto 1 do
      out.(i) <- mul ctx !acc prefix.(i - 1);
      acc := mul ctx !acc xs.(i)
    done;
    out.(0) <- !acc;
    out
  end

let pow ctx b e =
  let b = to_mont ctx b in
  let nbits = Nat.bit_length e in
  if nbits = 0 then Nat.rem Nat.one ctx.m
  else begin
    let acc = ref (one ctx) in
    for i = nbits - 1 downto 0 do
      acc := sqr ctx !acc;
      if Nat.test_bit e i then acc := mul ctx !acc b
    done;
    of_mont ctx !acc
  end
